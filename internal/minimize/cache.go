package minimize

import (
	"fmt"
	"strings"
	"sync"
)

// feasibilityCache remembers probed capacity vectors as two frontiers and
// answers dominated probes without simulating. It is the search-side use of
// the paper's monotonicity result (Definition 1, §3.2): increasing buffer
// capacities never delays any start time, so feasibility is monotone in the
// capacity vector — anything pointwise at or above a known-feasible vector
// is feasible, anything pointwise at or below a known-infeasible vector is
// infeasible.
//
// The frontiers are kept minimal: inserting a feasible vector drops the
// feasible entries it dominates, and symmetrically for infeasible ones, so
// lookups scan only non-redundant antichains. A contradiction between the
// frontiers (a feasible vector at or below an infeasible one) can only come
// from a non-monotone check and is reported as an error, preserving the
// search's non-monotone-check semantics.
//
// Safe for concurrent use; the search's speculative parallel probes share
// one cache.
type feasibilityCache struct {
	keys       []string // buffer order of the vectors
	mu         sync.Mutex
	feasible   [][]int64 // minimal known-feasible vectors
	infeasible [][]int64 // maximal known-infeasible vectors
}

func newFeasibilityCache(buffers []string) *feasibilityCache {
	return &feasibilityCache{keys: append([]string(nil), buffers...)}
}

// vec projects a capacity assignment onto the cache's buffer order.
func (c *feasibilityCache) vec(caps map[string]int64) []int64 {
	v := make([]int64, len(c.keys))
	for i, k := range c.keys {
		v[i] = caps[k]
	}
	return v
}

// leq reports a ≤ b pointwise.
func leq(a, b []int64) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

func (c *feasibilityCache) fmtVec(v []int64) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range c.keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s:%d", k, v[i])
	}
	sb.WriteByte('}')
	return sb.String()
}

// lookup answers a probe by dominance: (feasible, true) when the assignment
// is at or above a known-feasible vector, (false, true) when it is at or
// below a known-infeasible one, and (_, false) when the cache cannot decide
// and the probe must simulate.
func (c *feasibilityCache) lookup(caps map[string]int64) (feasible, hit bool) {
	v := c.vec(caps)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range c.feasible {
		if leq(f, v) {
			return true, true
		}
	}
	for _, inf := range c.infeasible {
		if leq(v, inf) {
			return false, true
		}
	}
	return false, false
}

// insert records a simulated probe's verdict, keeping the frontiers minimal.
// A verdict that contradicts the opposite frontier exposes a non-monotone
// check and is returned as an error.
func (c *feasibilityCache) insert(caps map[string]int64, feasible bool) error {
	v := c.vec(caps)
	c.mu.Lock()
	defer c.mu.Unlock()
	if feasible {
		for _, inf := range c.infeasible {
			if leq(v, inf) {
				return fmt.Errorf("minimize: check is not monotone: %s is feasible but the pointwise-larger %s was infeasible",
					c.fmtVec(v), c.fmtVec(inf))
			}
		}
		for _, f := range c.feasible {
			if leq(f, v) {
				return nil // dominated by an existing entry
			}
		}
		kept := c.feasible[:0]
		for _, f := range c.feasible {
			if !leq(v, f) {
				kept = append(kept, f)
			}
		}
		c.feasible = append(kept, v)
		return nil
	}
	for _, f := range c.feasible {
		if leq(f, v) {
			return fmt.Errorf("minimize: check is not monotone: %s is infeasible but the pointwise-smaller %s was feasible",
				c.fmtVec(v), c.fmtVec(f))
		}
	}
	for _, inf := range c.infeasible {
		if leq(v, inf) {
			return nil
		}
	}
	kept := c.infeasible[:0]
	for _, inf := range c.infeasible {
		if !leq(inf, v) {
			kept = append(kept, inf)
		}
	}
	c.infeasible = append(kept, v)
	return nil
}
