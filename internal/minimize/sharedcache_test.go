package minimize

import (
	"reflect"
	"strings"
	"testing"

	"vrdfcap/internal/graphgen"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
)

func sharedCacheChain(t *testing.T) (*taskgraph.Graph, []string, map[string]int64) {
	t.Helper()
	g, err := taskgraph.BuildChain(
		[]taskgraph.Stage{
			{Name: "a", WCRT: r(1, 1)}, {Name: "b", WCRT: r(1, 1)},
			{Name: "c", WCRT: r(1, 1)},
		},
		[]taskgraph.Link{
			{Prod: taskgraph.MustQuanta(2), Cons: taskgraph.MustQuanta(3)},
			{Prod: taskgraph.MustQuanta(4), Cons: taskgraph.MustQuanta(3)},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g, []string{"a->b", "b->c"}, map[string]int64{"a->b": 40, "b->c": 40}
}

// TestSearchWarmSharedCache pins the cross-search contract of the tentpole:
// a second search against a frontier warmed by an identical first search
// answers every probe from the cache — zero simulations — and still finds
// the identical assignment.
func TestSearchWarmSharedCache(t *testing.T) {
	g, buffers, upper := sharedCacheChain(t)
	frontier := probecache.NewFrontier(buffers)
	opts := Options{Workers: 1, Cache: frontier}
	check := DeadlockFreeCheck(g, "c", 80, []sim.Workloads{{}}, opts)

	cold, err := Search(buffers, upper, check, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Checks == 0 {
		t.Fatal("cold search simulated nothing")
	}
	warm, err := Search(buffers, upper, check, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Caps, warm.Caps) {
		t.Fatalf("warm cache changed the result: cold %v, warm %v", cold.Caps, warm.Caps)
	}
	if warm.Checks != 0 {
		t.Errorf("warm search still simulated %d probes", warm.Checks)
	}
	if warm.CacheHits == 0 {
		t.Error("warm search reported no cache hits")
	}

	// And against the no-cache ground truth.
	plainOpts := Options{Workers: 1, NoCache: true}
	plain, err := Search(buffers, upper,
		DeadlockFreeCheck(g, "c", 80, []sim.Workloads{{}}, plainOpts), plainOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Caps, warm.Caps) {
		t.Fatalf("shared cache diverged from uncached search: %v vs %v", warm.Caps, plain.Caps)
	}
}

// TestSearchSharedCacheSerialParallelParity pins that a shared frontier —
// even one warmed by a serial search — never changes what a parallel
// search finds, and vice versa, on seeded random chains.
func TestSearchSharedCacheSerialParallelParity(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		cfg := graphgen.Defaults(seed + 700)
		g, c, err := graphgen.Random(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buffers []string
		upper := make(map[string]int64)
		for _, b := range g.Buffers() {
			buffers = append(buffers, b.Name)
			upper[b.Name] = 40
		}
		workloads := []sim.Workloads{sim.UniformWorkloads(g, seed)}

		plainOpts := Options{Workers: 1, NoCache: true}
		want, err := Search(buffers, upper,
			DeadlockFreeCheck(g, c.Task, 60, workloads, plainOpts), plainOpts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		frontier := probecache.NewFrontier(buffers)
		for _, workers := range []int{1, 4, 1} {
			opts := Options{Workers: workers, Cache: frontier}
			got, err := Search(buffers, upper,
				DeadlockFreeCheck(g, c.Task, 60, workloads, opts), opts)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(got.Caps, want.Caps) {
				t.Fatalf("seed %d workers %d: shared cache changed the result\ngot:  %v\nwant: %v",
					seed, workers, got.Caps, want.Caps)
			}
		}
		// After serial and parallel searches warmed it, a final run is
		// answered entirely by the frontier.
		final, err := Search(buffers, upper,
			DeadlockFreeCheck(g, c.Task, 60, workloads), Options{Workers: 2, Cache: frontier})
		if err != nil {
			t.Fatalf("seed %d final: %v", seed, err)
		}
		if final.Checks != 0 {
			t.Errorf("seed %d: fully warmed search simulated %d probes", seed, final.Checks)
		}
	}
}

func TestSearchSharedCacheOrderMismatch(t *testing.T) {
	g, buffers, upper := sharedCacheChain(t)
	frontier := probecache.NewFrontier([]string{buffers[1], buffers[0]})
	_, err := Search(buffers, upper,
		DeadlockFreeCheck(g, "c", 80, []sim.Workloads{{}}),
		Options{Cache: frontier})
	if err == nil || !strings.Contains(err.Error(), "shared cache") {
		t.Errorf("mismatched cache order accepted: %v", err)
	}
}

// TestSearchNoCacheWinsOverCache pins the documented precedence: NoCache
// forces simulation even when a warm shared frontier is supplied.
func TestSearchNoCacheWinsOverCache(t *testing.T) {
	g, buffers, upper := sharedCacheChain(t)
	frontier := probecache.NewFrontier(buffers)
	warmOpts := Options{Workers: 1, Cache: frontier}
	if _, err := Search(buffers, upper,
		DeadlockFreeCheck(g, "c", 80, []sim.Workloads{{}}, warmOpts), warmOpts); err != nil {
		t.Fatal(err)
	}
	opts := Options{Workers: 1, Cache: frontier, NoCache: true}
	res, err := Search(buffers, upper,
		DeadlockFreeCheck(g, "c", 80, []sim.Workloads{{}}, opts), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 {
		t.Errorf("NoCache search reported %d cache hits", res.CacheHits)
	}
	if res.Checks == 0 {
		t.Error("NoCache search simulated nothing")
	}
}
