package minimize

import (
	"reflect"
	"strings"
	"testing"

	"vrdfcap/internal/probecache"
	"vrdfcap/internal/quanta"
	"vrdfcap/internal/sim"
)

func TestBoundsDecide(t *testing.T) {
	b := &Bounds{
		Sufficient: map[string]int64{"x": 5, "y": 3},
		Necessary:  map[string]int64{"x": 2},
	}
	cases := []struct {
		name             string
		caps             map[string]int64
		feasible, decide bool
	}{
		{"dominates sufficient", map[string]int64{"x": 5, "y": 4}, true, true},
		{"equals sufficient", map[string]int64{"x": 5, "y": 3}, true, true},
		{"below necessary", map[string]int64{"x": 1, "y": 100}, false, true},
		{"between bounds", map[string]int64{"x": 3, "y": 2}, false, false},
		{"partial keys never sufficient", map[string]int64{"x": 9}, false, false},
		{"extra keys never sufficient", map[string]int64{"x": 9, "y": 9, "z": 1}, false, false},
	}
	for _, c := range cases {
		feasible, decided := b.Decide(c.caps)
		if decided != c.decide || (decided && feasible != c.feasible) {
			t.Errorf("%s: Decide(%v) = (%v, %v), want (%v, %v)",
				c.name, c.caps, feasible, decided, c.feasible, c.decide)
		}
	}
	var nilBounds *Bounds
	if _, decided := nilBounds.Decide(map[string]int64{"x": 1}); decided {
		t.Error("nil Bounds decided a probe")
	}
}

// TestSearchWithBoundsIdenticalCaps pins the pruning contract: sound bounds
// change only the probe accounting, never the assignment found.
func TestSearchWithBoundsIdenticalCaps(t *testing.T) {
	g := figure1Graph(t)
	mk := func() CheckFunc {
		return DeadlockFreeCheck(g, "wb", 200, []sim.Workloads{
			{buf: {Cons: quanta.Cycle(2, 3)}},
		})
	}
	plain, err := Search([]string{buf}, map[string]int64{buf: 20}, mk())
	if err != nil {
		t.Fatal(err)
	}
	// The true minimum is 5 (alternating 2,3): capacity 20 is known
	// feasible, anything below 3 is infeasible (a production quantum of 3
	// can never fit).
	bounds := &Bounds{
		Sufficient: map[string]int64{buf: 20},
		Necessary:  map[string]int64{buf: 3},
	}
	pruned, err := Search([]string{buf}, map[string]int64{buf: 20}, mk(), Options{Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Caps, pruned.Caps) {
		t.Errorf("bounds changed the assignment: plain %v, pruned %v", plain.Caps, pruned.Caps)
	}
	if pruned.BoundHits == 0 {
		t.Error("no probe was decided by the bounds")
	}
	if plain.BoundHits != 0 {
		t.Errorf("BoundHits = %d without Options.Bounds", plain.BoundHits)
	}
	if pruned.Checks >= plain.Checks {
		t.Errorf("bounds did not reduce simulated checks: plain %d, pruned %d", plain.Checks, pruned.Checks)
	}
}

// TestSearchRejectsLyingBounds pins the consistency guard: bound verdicts
// are recorded in the monotone frontier, so a bound that contradicts a
// verdict the simulations already established — here, via a shared cache
// from a bound-free search — is surfaced as a frontier error, never
// silently accepted.
func TestSearchRejectsLyingBounds(t *testing.T) {
	g := figure1Graph(t)
	mk := func() CheckFunc {
		return DeadlockFreeCheck(g, "wb", 200, []sim.Workloads{
			{buf: {Cons: quanta.Cycle(2, 3)}},
		})
	}
	shared := probecache.NewFrontier([]string{buf})
	if _, err := Search([]string{buf}, map[string]int64{buf: 20}, mk(), Options{Cache: shared}); err != nil {
		t.Fatal(err)
	}
	// The first search simulated capacity 5 feasible. A bound claiming 6
	// is necessary marks 5 infeasible, which the frontier must reject.
	lying := &Bounds{Necessary: map[string]int64{buf: 6}}
	_, err := Search([]string{buf}, map[string]int64{buf: 20}, mk(), Options{Cache: shared, Bounds: lying})
	if err == nil {
		t.Fatal("lying necessary bound produced no error")
	}
	if !strings.Contains(err.Error(), "not monotone") {
		t.Errorf("unexpected error for lying bounds: %v", err)
	}
}

// TestProbeStatsAccumulate pins the effort accounting: a checkpointing
// search records warm and cold resets and never counts resumed events as
// simulated.
func TestProbeStatsAccumulate(t *testing.T) {
	g := figure1Graph(t)
	stats := &ProbeStats{}
	opts := Options{Checkpoints: 4, Stats: stats}
	check := DeadlockFreeCheck(g, "wb", 600, []sim.Workloads{
		{buf: {Cons: quanta.Cycle(2, 3)}},
	}, opts)
	res, err := Search([]string{buf}, map[string]int64{buf: 20}, check, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Caps[buf] != 5 {
		t.Fatalf("minimal capacity = %d, want 5", res.Caps[buf])
	}
	sim, resumed := stats.SimEvents.Load(), stats.ResumedEvents.Load()
	warm, cold := stats.WarmResets.Load(), stats.ColdResets.Load()
	if sim <= 0 {
		t.Errorf("SimEvents = %d, want > 0", sim)
	}
	if cold == 0 {
		t.Error("no cold reset recorded; the first probe must be cold")
	}
	if warm > 0 && resumed <= 0 {
		t.Errorf("warm resets %d with %d resumed events", warm, resumed)
	}
	if int(warm+cold) != res.Checks {
		t.Errorf("resets %d+%d != simulated checks %d", warm, cold, res.Checks)
	}
}
