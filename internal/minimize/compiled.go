package minimize

import (
	"fmt"
	"sync"

	"vrdfcap/internal/taskgraph"
	"vrdfcap/internal/vrdf"
)

// pool is a free-list of reusable per-worker probe engines (compiled
// machines or verifiers). sync.Pool is unsuitable here: construction can
// fail, and compiled engines are too expensive to let the collector drop
// mid-search. Callers that hit an engine error simply don't return the
// engine, so a poisoned engine never re-enters circulation.
type pool[T any] struct {
	mu   sync.Mutex
	free []T
}

func (p *pool[T]) get() (v T, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		v = p.free[n-1]
		var zero T
		p.free[n-1] = zero
		p.free = p.free[:n-1]
		return v, true
	}
	return v, false
}

func (p *pool[T]) put(v T) {
	p.mu.Lock()
	p.free = append(p.free, v)
	p.mu.Unlock()
}

// probeTemplate prepares a task graph for repeated capacity probes without
// cloning it per probe: one clone is made lazily, unsized buffers get a
// placeholder capacity (every probe must cover them), and each probed
// assignment translates to initial-token overrides on the space edges of
// the compiled machines. The lazy build keeps the check constructors
// error-free, like the clone-per-probe path they replace: a broken graph
// surfaces from the first check call.
type probeTemplate struct {
	base    *taskgraph.Graph
	once    sync.Once
	err     error
	sized   *taskgraph.Graph
	mapping *vrdf.Mapping
	// unsized records the original non-positive capacities so probes
	// that fail to cover those buffers report them exactly as sizing an
	// unsized graph always has.
	unsized map[string]int64
}

func (t *probeTemplate) build() {
	t.sized = t.base.Clone()
	t.unsized = make(map[string]int64)
	for _, b := range t.sized.Buffers() {
		if b.Capacity <= 0 {
			t.unsized[b.DefaultName()] = b.Capacity
			b.Capacity = 1 // placeholder; every probe must override it
		}
	}
	_, m, err := vrdf.FromTaskGraph(t.sized)
	if err != nil {
		t.err = err
		return
	}
	t.mapping = m
}

// overrides validates a capacity assignment against the template and
// translates it to space-edge initial-token overrides. Unknown buffers and
// non-positive or missing capacities fail with the same errors the
// clone-and-rebuild path produced.
func (t *probeTemplate) overrides(caps map[string]int64) (map[string]int64, error) {
	t.once.Do(t.build)
	if t.err != nil {
		return nil, t.err
	}
	byDefault := make(map[string]int64, len(caps))
	for name, c := range caps {
		b := t.sized.BufferByName(name)
		if b == nil {
			return nil, fmt.Errorf("minimize: unknown buffer %q", name)
		}
		byDefault[b.DefaultName()] = c
	}
	ov := make(map[string]int64, len(caps))
	for _, b := range t.sized.Buffers() {
		name := b.DefaultName()
		c, probed := byDefault[name]
		if !probed {
			if orig, un := t.unsized[name]; un {
				return nil, fmt.Errorf("sim: buffer %s has capacity %d; size the graph before simulating", name, orig)
			}
			continue
		}
		if c <= 0 {
			return nil, fmt.Errorf("sim: buffer %s has capacity %d; size the graph before simulating", name, c)
		}
		pair, ok := t.mapping.Pair(name)
		if !ok {
			return nil, fmt.Errorf("minimize: buffer %q has no edge pair", name)
		}
		ov[pair.Space] = c
	}
	return ov, nil
}
