package ratio

import "testing"

// FuzzParse checks that the rational parser never panics and that every
// accepted value round-trips through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"1/2", "-6/4", "0.0227", "51.2", "3", "-3", "1/0", "x", "9223372036854775807",
		"-9223372036854775808", "0.00000000000000000001", "1/9223372036854775807",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(r.String())
		if err != nil {
			t.Fatalf("String() form %q of %q does not re-parse: %v", r.String(), s, err)
		}
		if !back.Equal(r) {
			t.Fatalf("round trip %q -> %v -> %v", s, r, back)
		}
		if r.Den() <= 0 {
			t.Fatalf("non-canonical denominator %d from %q", r.Den(), s)
		}
	})
}
