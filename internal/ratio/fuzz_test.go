package ratio

import (
	"errors"
	"math"
	"math/big"
	"testing"
)

// FuzzParse checks that the rational parser never panics and that every
// accepted value round-trips through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"1/2", "-6/4", "0.0227", "51.2", "3", "-3", "1/0", "x", "9223372036854775807",
		"-9223372036854775808", "0.00000000000000000001", "1/9223372036854775807",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			return
		}
		back, err := Parse(r.String())
		if err != nil {
			t.Fatalf("String() form %q of %q does not re-parse: %v", r.String(), s, err)
		}
		if !back.Equal(r) {
			t.Fatalf("round trip %q -> %v -> %v", s, r, back)
		}
		if r.Den() <= 0 {
			t.Fatalf("non-canonical denominator %d from %q", r.Den(), s)
		}
	})
}

// representable reports whether the canonical form of a big.Rat fits the
// library's invariant: int64 numerator, positive int64 denominator.
func representable(r *big.Rat) bool {
	return r.Num().IsInt64() && r.Denom().IsInt64()
}

// FuzzRatRoundTrip audits the constructors and Checked arithmetic against
// math/big across the full int64 range, including the math.MinInt64 edge
// where |n| has no int64 negation: New must produce the canonical form
// exactly when it is representable (never a spurious overflow error, never
// a wrapped-around value), and every Checked operation that succeeds must
// agree with big.Rat bit for bit.
func FuzzRatRoundTrip(f *testing.F) {
	min, max := int64(math.MinInt64), int64(math.MaxInt64)
	for _, seed := range [][4]int64{
		{1, 2, 3, 4}, {-6, 4, 6, -4}, {0, 5, 5, 1},
		{min, min, min, -1}, {min, -2, 2, min}, {6, min, min, 6},
		{min, 2, min, 3}, {3, min, min, max}, {max, max, max, -1},
		{min + 1, max, -1, min}, {7, 0, 0, 7},
	} {
		f.Add(seed[0], seed[1], seed[2], seed[3])
	}
	f.Fuzz(func(t *testing.T, num, den, num2, den2 int64) {
		r, ok := checkNew(t, num, den)
		if !ok {
			return
		}
		s, ok := checkNew(t, num2, den2)
		if !ok {
			return
		}
		br, bs := toBig(r), toBig(s)
		checkOp := func(op string, v Rat, err error, want *big.Rat) {
			if err != nil {
				var oe *OverflowError
				if !errors.As(err, &oe) {
					t.Fatalf("%s(%v, %v): non-overflow error %v", op, r, s, err)
				}
				return // conservative overflow is allowed; wrap-around is not
			}
			if toBig(v).Cmp(want) != 0 {
				t.Fatalf("%s(%v, %v) = %v, want %v", op, r, s, v, want.RatString())
			}
		}
		v, err := r.AddChecked(s)
		checkOp("add", v, err, new(big.Rat).Add(br, bs))
		v, err = r.SubChecked(s)
		checkOp("sub", v, err, new(big.Rat).Sub(br, bs))
		v, err = r.MulChecked(s)
		checkOp("mul", v, err, new(big.Rat).Mul(br, bs))
		if !s.IsZero() {
			v, err = r.DivChecked(s)
			checkOp("div", v, err, new(big.Rat).Quo(br, bs))
		}
		if r.Cmp(s) != br.Cmp(bs) {
			t.Fatalf("Cmp(%v, %v) = %d, big says %d", r, s, r.Cmp(s), br.Cmp(bs))
		}
	})
}

// checkNew validates New(num, den) against the big.Rat reference and
// returns the Rat when construction succeeded.
func checkNew(t *testing.T, num, den int64) (Rat, bool) {
	r, err := New(num, den)
	if den == 0 {
		if err == nil {
			t.Fatalf("New(%d, 0) accepted a zero denominator", num)
		}
		return Rat{}, false
	}
	want := new(big.Rat).SetFrac(big.NewInt(num), big.NewInt(den))
	if err != nil {
		var oe *OverflowError
		if !errors.As(err, &oe) {
			t.Fatalf("New(%d, %d): non-overflow error %v", num, den, err)
		}
		if representable(want) {
			t.Fatalf("New(%d, %d) reported overflow but the canonical form %s is representable", num, den, want.RatString())
		}
		return Rat{}, false
	}
	if !representable(want) {
		t.Fatalf("New(%d, %d) = %v but the canonical form is not representable", num, den, r)
	}
	if r.Den() <= 0 {
		t.Fatalf("New(%d, %d): non-positive denominator %d", num, den, r.Den())
	}
	if gcdU64(absU64(r.Num()), uint64(r.Den())) != 1 {
		t.Fatalf("New(%d, %d) = %d/%d is not reduced", num, den, r.Num(), r.Den())
	}
	if toBig(r).Cmp(want) != 0 {
		t.Fatalf("New(%d, %d) = %v, want %s", num, den, r, want.RatString())
	}
	back, perr := Parse(r.String())
	if perr != nil || !back.Equal(r) {
		t.Fatalf("String round trip of %v: %v, %v", r, back, perr)
	}
	if n, nerr := r.NegChecked(); nerr == nil {
		if nn, err2 := n.NegChecked(); err2 != nil || !nn.Equal(r) {
			t.Fatalf("double negation of %v: %v, %v", r, nn, err2)
		}
	} else if r.Num() != math.MinInt64 {
		t.Fatalf("NegChecked(%v) overflowed but num is not MinInt64", r)
	}
	return r, true
}
