// Package ratio implements exact rational arithmetic on int64 numerators and
// denominators.
//
// The buffer-capacity analysis of Wiggers et al. (DATE 2008) manipulates
// token-transfer rates such as τ/γ̂(e) and response-time quotients whose exact
// floor and ceiling decide the published capacities (Equation 4 of the
// paper). Floating point mis-floors these quantities near integer
// boundaries, so every rate, period and bound offset in this library is a
// Rat.
//
// A Rat is always kept in canonical form: the denominator is strictly
// positive and gcd(|num|, den) == 1. The zero value is the rational number
// 0/1 and is ready to use.
//
// All operations are overflow-checked. Overflow in this domain indicates a
// malformed model (the magnitudes involved are sample rates and frame sizes,
// far below 2^63), so the arithmetic methods panic with an *OverflowError.
// Boundary code that consumes untrusted input can use the Checked variants,
// which return an error instead.
package ratio

import (
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"
)

// Rat is an exact rational number num/den with den > 0 and
// gcd(|num|, den) == 1.
type Rat struct {
	num int64
	den int64
}

// Common constants.
var (
	// Zero is the rational number 0.
	Zero = Rat{0, 1}
	// One is the rational number 1.
	One = Rat{1, 1}
)

// OverflowError reports that an exact rational operation would exceed the
// range of int64 even after normalisation.
type OverflowError struct {
	Op string // the operation that overflowed, e.g. "mul"
}

func (e *OverflowError) Error() string {
	return "ratio: int64 overflow in " + e.Op
}

// New returns the canonical rational num/den. It returns an error if den is
// zero or the canonical form is not representable — which can only happen
// around math.MinInt64, whose magnitude 2⁶³ has no int64 negation (e.g.
// 3/MinInt64 would need the denominator 2⁶³).
func New(num, den int64) (Rat, error) {
	if den == 0 {
		return Rat{}, fmt.Errorf("ratio: zero denominator")
	}
	if num == 0 {
		return Rat{0, 1}, nil
	}
	// Reduce with an unsigned gcd: |MinInt64| overflows int64, so the
	// magnitudes must be taken in uint64 before any division.
	g := gcdU64(absU64(num), absU64(den))
	if g == 1<<63 {
		// Both magnitudes are 2⁶³: num == den == MinInt64, the value 1.
		return One, nil
	}
	num /= int64(g)
	den /= int64(g)
	if den < 0 {
		// A reduced MinInt64 component cannot be negated; the canonical
		// form (positive denominator) is out of int64 range.
		if num == math.MinInt64 || den == math.MinInt64 {
			return Rat{}, &OverflowError{Op: "new"}
		}
		num, den = -num, -den
	}
	return Rat{num, den}, nil
}

// MustNew is like New but panics on error. Use for literals known to be
// valid at compile time.
func MustNew(num, den int64) Rat {
	r, err := New(num, den)
	if err != nil {
		panic(err)
	}
	return r
}

// FromInt returns the rational number n/1.
func FromInt(n int64) Rat { return Rat{n, 1} }

// Num returns the canonical numerator.
func (r Rat) Num() int64 { return r.normalised().num }

// Den returns the canonical (positive) denominator.
func (r Rat) Den() int64 { return r.normalised().den }

// normalised maps the zero value Rat{} onto 0/1 so that the zero value is
// usable; any Rat produced by the constructors is already canonical.
func (r Rat) normalised() Rat {
	if r.den == 0 {
		return Rat{0, 1}
	}
	return r
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.normalised().num == 0 }

// Sign returns -1, 0 or +1 according to the sign of r.
func (r Rat) Sign() int {
	switch n := r.normalised().num; {
	case n < 0:
		return -1
	case n > 0:
		return 1
	default:
		return 0
	}
}

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.normalised().den == 1 }

// Add returns r + s, panicking on overflow.
func (r Rat) Add(s Rat) Rat {
	v, err := r.AddChecked(s)
	if err != nil {
		panic(err)
	}
	return v
}

// AddChecked returns r + s, or an error on overflow.
func (r Rat) AddChecked(s Rat) (Rat, error) {
	r, s = r.normalised(), s.normalised()
	// a/b + c/d = (a*(d/g) + c*(b/g)) / (b*(d/g)) with g = gcd(b, d).
	g := gcd64(r.den, s.den)
	db := s.den / g
	n1, ok := mul64(r.num, db)
	if !ok {
		return Rat{}, &OverflowError{Op: "add"}
	}
	n2, ok := mul64(s.num, r.den/g)
	if !ok {
		return Rat{}, &OverflowError{Op: "add"}
	}
	n, ok := add64(n1, n2)
	if !ok {
		return Rat{}, &OverflowError{Op: "add"}
	}
	d, ok := mul64(r.den, db)
	if !ok {
		return Rat{}, &OverflowError{Op: "add"}
	}
	return New(n, d)
}

// Sub returns r - s, panicking on overflow.
func (r Rat) Sub(s Rat) Rat {
	v, err := r.SubChecked(s)
	if err != nil {
		panic(err)
	}
	return v
}

// SubChecked returns r - s, or an error on overflow.
func (r Rat) SubChecked(s Rat) (Rat, error) {
	neg, err := s.NegChecked()
	if err != nil {
		return Rat{}, err
	}
	return r.AddChecked(neg)
}

// Neg returns -r, panicking on overflow (only possible for num==MinInt64).
func (r Rat) Neg() Rat {
	v, err := r.NegChecked()
	if err != nil {
		panic(err)
	}
	return v
}

// NegChecked returns -r, or an error if -r is not representable.
func (r Rat) NegChecked() (Rat, error) {
	r = r.normalised()
	if r.num == math.MinInt64 {
		return Rat{}, &OverflowError{Op: "neg"}
	}
	return Rat{-r.num, r.den}, nil
}

// Mul returns r * s, panicking on overflow.
func (r Rat) Mul(s Rat) Rat {
	v, err := r.MulChecked(s)
	if err != nil {
		panic(err)
	}
	return v
}

// MulChecked returns r * s, or an error on overflow.
func (r Rat) MulChecked(s Rat) (Rat, error) {
	r, s = r.normalised(), s.normalised()
	// Cross-reduce before multiplying to keep intermediates small.
	g1 := gcd64(abs64(r.num), s.den)
	g2 := gcd64(abs64(s.num), r.den)
	n, ok := mul64(r.num/g1, s.num/g2)
	if !ok {
		return Rat{}, &OverflowError{Op: "mul"}
	}
	d, ok := mul64(r.den/g2, s.den/g1)
	if !ok {
		return Rat{}, &OverflowError{Op: "mul"}
	}
	return New(n, d)
}

// Div returns r / s, panicking on overflow or division by zero.
func (r Rat) Div(s Rat) Rat {
	v, err := r.DivChecked(s)
	if err != nil {
		panic(err)
	}
	return v
}

// DivChecked returns r / s, or an error on overflow or if s is zero.
func (r Rat) DivChecked(s Rat) (Rat, error) {
	s = s.normalised()
	if s.num == 0 {
		return Rat{}, fmt.Errorf("ratio: division by zero")
	}
	inv, err := New(s.den, s.num)
	if err != nil {
		return Rat{}, err
	}
	return r.MulChecked(inv)
}

// MulInt returns r * n, panicking on overflow.
func (r Rat) MulInt(n int64) Rat { return r.Mul(FromInt(n)) }

// DivInt returns r / n, panicking on overflow or if n is zero.
func (r Rat) DivInt(n int64) Rat { return r.Div(FromInt(n)) }

// Cmp compares r and s and returns -1, 0 or +1. Unlike the arithmetic
// methods it never overflows: the cross products are evaluated in 128 bits.
func (r Rat) Cmp(s Rat) int {
	r, s = r.normalised(), s.normalised()
	rs, ss := r.Sign(), s.Sign()
	switch {
	case rs < ss:
		return -1
	case rs > ss:
		return 1
	case rs == 0:
		return 0
	}
	// Same non-zero sign: compare |r.num|·s.den with |s.num|·r.den
	// exactly, then flip for negatives.
	hi1, lo1 := bits.Mul64(absU64(r.num), uint64(s.den))
	hi2, lo2 := bits.Mul64(absU64(s.num), uint64(r.den))
	c := 0
	if hi1 != hi2 {
		if hi1 < hi2 {
			c = -1
		} else {
			c = 1
		}
	} else if lo1 != lo2 {
		if lo1 < lo2 {
			c = -1
		} else {
			c = 1
		}
	}
	if rs < 0 {
		c = -c
	}
	return c
}

// absU64 returns |n| as a uint64; well-defined for MinInt64.
func absU64(n int64) uint64 {
	if n < 0 {
		return uint64(-(n + 1)) + 1
	}
	return uint64(n)
}

// Less reports whether r < s.
func (r Rat) Less(s Rat) bool { return r.Cmp(s) < 0 }

// LessEq reports whether r <= s.
func (r Rat) LessEq(s Rat) bool { return r.Cmp(s) <= 0 }

// Equal reports whether r == s.
func (r Rat) Equal(s Rat) bool { return r.Cmp(s) == 0 }

// Floor returns the largest integer <= r.
func (r Rat) Floor() int64 {
	r = r.normalised()
	q := r.num / r.den
	if r.num%r.den != 0 && r.num < 0 {
		q--
	}
	return q
}

// Ceil returns the smallest integer >= r.
func (r Rat) Ceil() int64 {
	r = r.normalised()
	q := r.num / r.den
	if r.num%r.den != 0 && r.num > 0 {
		q++
	}
	return q
}

// Min returns the smaller of r and s.
func Min(r, s Rat) Rat {
	if r.Cmp(s) <= 0 {
		return r
	}
	return s
}

// Max returns the larger of r and s.
func Max(r, s Rat) Rat {
	if r.Cmp(s) >= 0 {
		return r
	}
	return s
}

// Float64 returns the nearest float64 approximation of r. It is intended for
// reporting only; the analysis never rounds through floats.
func (r Rat) Float64() float64 {
	r = r.normalised()
	return float64(r.num) / float64(r.den)
}

// String formats r as "n" when integral and "n/d" otherwise.
func (r Rat) String() string {
	r = r.normalised()
	if r.den == 1 {
		return strconv.FormatInt(r.num, 10)
	}
	return strconv.FormatInt(r.num, 10) + "/" + strconv.FormatInt(r.den, 10)
}

// Parse parses "n", "n/d" or a decimal like "1.25" into a Rat.
func Parse(s string) (Rat, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Rat{}, fmt.Errorf("ratio: empty input")
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		n, err := strconv.ParseInt(strings.TrimSpace(s[:i]), 10, 64)
		if err != nil {
			return Rat{}, fmt.Errorf("ratio: bad numerator %q: %w", s[:i], err)
		}
		d, err := strconv.ParseInt(strings.TrimSpace(s[i+1:]), 10, 64)
		if err != nil {
			return Rat{}, fmt.Errorf("ratio: bad denominator %q: %w", s[i+1:], err)
		}
		return New(n, d)
	}
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart, fracPart := s[:i], s[i+1:]
		if fracPart == "" {
			return Rat{}, fmt.Errorf("ratio: bad decimal %q", s)
		}
		neg := strings.HasPrefix(intPart, "-")
		whole := int64(0)
		if intPart != "" && intPart != "-" && intPart != "+" {
			w, err := strconv.ParseInt(intPart, 10, 64)
			if err != nil {
				return Rat{}, fmt.Errorf("ratio: bad decimal %q: %w", s, err)
			}
			whole = w
		}
		frac, err := strconv.ParseInt(fracPart, 10, 64)
		if err != nil || frac < 0 {
			return Rat{}, fmt.Errorf("ratio: bad decimal %q", s)
		}
		den := int64(1)
		for range fracPart {
			var ok bool
			den, ok = mul64(den, 10)
			if !ok {
				return Rat{}, &OverflowError{Op: "parse"}
			}
		}
		f, err := New(frac, den)
		if err != nil {
			return Rat{}, err
		}
		w := FromInt(abs64(whole))
		v, err := w.AddChecked(f)
		if err != nil {
			return Rat{}, err
		}
		if neg {
			return v.NegChecked()
		}
		return v, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Rat{}, fmt.Errorf("ratio: bad integer %q: %w", s, err)
	}
	return FromInt(n), nil
}

// MarshalText implements encoding.TextMarshaler using the String format.
func (r Rat) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler accepting the Parse
// formats.
func (r *Rat) UnmarshalText(b []byte) error {
	v, err := Parse(string(b))
	if err != nil {
		return err
	}
	*r = v
	return nil
}

// GCD returns the greatest common divisor of a and b, both of which must be
// non-negative. GCD(0, 0) == 0.
func GCD(a, b int64) int64 {
	if a < 0 || b < 0 {
		panic("ratio: GCD of negative value")
	}
	return gcd64(a, b)
}

// LCM returns the least common multiple of a and b (both positive),
// panicking on overflow.
func LCM(a, b int64) int64 {
	if a <= 0 || b <= 0 {
		panic("ratio: LCM of non-positive value")
	}
	v, ok := mul64(a/gcd64(a, b), b)
	if !ok {
		panic(&OverflowError{Op: "lcm"})
	}
	return v
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// gcdU64 is the unsigned Euclid used by New, where magnitudes may be 2⁶³.
func gcdU64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(n int64) int64 {
	if n < 0 {
		return -n // note: undefined for MinInt64; callers guard.
	}
	return n
}

func add64(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func mul64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	if (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return 0, false
	}
	return p, true
}
