package ratio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewCanonicalises(t *testing.T) {
	cases := []struct {
		n, d     int64
		wantN    int64
		wantD    int64
		wantText string
	}{
		{1, 2, 1, 2, "1/2"},
		{2, 4, 1, 2, "1/2"},
		{-2, 4, -1, 2, "-1/2"},
		{2, -4, -1, 2, "-1/2"},
		{-2, -4, 1, 2, "1/2"},
		{0, 5, 0, 1, "0"},
		{0, -5, 0, 1, "0"},
		{7, 1, 7, 1, "7"},
		{44100, 441, 100, 1, "100"},
		{1152, 480, 12, 5, "12/5"},
	}
	for _, c := range cases {
		r, err := New(c.n, c.d)
		if err != nil {
			t.Fatalf("New(%d, %d): %v", c.n, c.d, err)
		}
		if r.Num() != c.wantN || r.Den() != c.wantD {
			t.Errorf("New(%d, %d) = %d/%d, want %d/%d", c.n, c.d, r.Num(), r.Den(), c.wantN, c.wantD)
		}
		if got := r.String(); got != c.wantText {
			t.Errorf("New(%d, %d).String() = %q, want %q", c.n, c.d, got, c.wantText)
		}
	}
}

func TestNewZeroDenominator(t *testing.T) {
	if _, err := New(1, 0); err == nil {
		t.Fatal("New(1, 0) succeeded, want error")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Rat
	if !r.IsZero() {
		t.Error("zero value is not zero")
	}
	if got := r.Add(One); !got.Equal(One) {
		t.Errorf("0 + 1 = %v, want 1", got)
	}
	if got := r.String(); got != "0" {
		t.Errorf("zero value String() = %q, want \"0\"", got)
	}
	if r.Den() != 1 {
		t.Errorf("zero value Den() = %d, want 1", r.Den())
	}
}

func TestArithmetic(t *testing.T) {
	half := MustNew(1, 2)
	third := MustNew(1, 3)
	cases := []struct {
		name string
		got  Rat
		want Rat
	}{
		{"add", half.Add(third), MustNew(5, 6)},
		{"sub", half.Sub(third), MustNew(1, 6)},
		{"mul", half.Mul(third), MustNew(1, 6)},
		{"div", half.Div(third), MustNew(3, 2)},
		{"neg", half.Neg(), MustNew(-1, 2)},
		{"mulint", third.MulInt(6), FromInt(2)},
		{"divint", half.DivInt(2), MustNew(1, 4)},
		{"addneg", half.Add(MustNew(-1, 2)), Zero},
	}
	for _, c := range cases {
		if !c.got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestFloorCeil(t *testing.T) {
	cases := []struct {
		r     Rat
		floor int64
		ceil  int64
	}{
		{MustNew(7, 2), 3, 4},
		{MustNew(-7, 2), -4, -3},
		{FromInt(5), 5, 5},
		{FromInt(-5), -5, -5},
		{Zero, 0, 0},
		{MustNew(1, 3), 0, 1},
		{MustNew(-1, 3), -1, 0},
		{MustNew(6015, 1), 6015, 6015},
		// Equation-4 style value: 3008 + 2047 + 959 + 1 exactly.
		{MustNew(6015*7, 7), 6015, 6015},
	}
	for _, c := range cases {
		if got := c.r.Floor(); got != c.floor {
			t.Errorf("(%v).Floor() = %d, want %d", c.r, got, c.floor)
		}
		if got := c.r.Ceil(); got != c.ceil {
			t.Errorf("(%v).Ceil() = %d, want %d", c.r, got, c.ceil)
		}
	}
}

func TestCmpOrdering(t *testing.T) {
	asc := []Rat{
		MustNew(-3, 1), MustNew(-1, 2), Zero, MustNew(1, 1000),
		MustNew(1, 3), MustNew(1, 2), One, MustNew(44100, 441),
	}
	for i := range asc {
		for j := range asc {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := asc[i].Cmp(asc[j]); got != want {
				t.Errorf("Cmp(%v, %v) = %d, want %d", asc[i], asc[j], got, want)
			}
		}
	}
	if !MustNew(1, 3).Less(MustNew(1, 2)) {
		t.Error("1/3 < 1/2 reported false")
	}
	if !MustNew(1, 2).LessEq(MustNew(1, 2)) {
		t.Error("1/2 <= 1/2 reported false")
	}
}

func TestOverflowDetected(t *testing.T) {
	big := FromInt(math.MaxInt64)
	if _, err := big.MulChecked(FromInt(2)); err == nil {
		t.Error("MaxInt64 * 2 did not report overflow")
	}
	if _, err := big.AddChecked(big); err == nil {
		t.Error("MaxInt64 + MaxInt64 did not report overflow")
	}
	minR := FromInt(math.MinInt64)
	if _, err := minR.NegChecked(); err == nil {
		t.Error("-MinInt64 did not report overflow")
	}
	if _, err := minR.MulChecked(FromInt(-1)); err == nil {
		t.Error("MinInt64 * -1 did not report overflow")
	}
	defer func() {
		if recover() == nil {
			t.Error("Mul on overflow did not panic")
		}
	}()
	_ = big.Mul(FromInt(3))
}

func TestDivByZero(t *testing.T) {
	if _, err := One.DivChecked(Zero); err == nil {
		t.Error("1/0 did not report an error")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Rat
	}{
		{"3", FromInt(3)},
		{"-3", FromInt(-3)},
		{"1/2", MustNew(1, 2)},
		{"-6/4", MustNew(-3, 2)},
		{" 7 / 8 ", MustNew(7, 8)},
		{"1.25", MustNew(5, 4)},
		{"-0.5", MustNew(-1, 2)},
		{"0.0227", MustNew(227, 10000)},
		{"51.2", MustNew(256, 5)},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "x", "1/", "/2", "1/0", "1.", "1.x", "--3"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	for _, r := range []Rat{Zero, One, MustNew(-7, 3), MustNew(441, 44100), FromInt(6015)} {
		b, err := r.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%v): %v", r, err)
		}
		var got Rat
		if err := got.UnmarshalText(b); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", b, err)
		}
		if !got.Equal(r) {
			t.Errorf("round trip %v -> %q -> %v", r, b, got)
		}
	}
}

func TestGCDLCM(t *testing.T) {
	cases := []struct{ a, b, gcd, lcm int64 }{
		{2048, 960, 64, 30720},
		{1152, 480, 96, 5760},
		{441, 1, 1, 441},
		{12, 18, 6, 36},
		{7, 7, 7, 7},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.gcd {
			t.Errorf("GCD(%d, %d) = %d, want %d", c.a, c.b, got, c.gcd)
		}
		if got := LCM(c.a, c.b); got != c.lcm {
			t.Errorf("LCM(%d, %d) = %d, want %d", c.a, c.b, got, c.lcm)
		}
	}
	if got := GCD(0, 5); got != 5 {
		t.Errorf("GCD(0, 5) = %d, want 5", got)
	}
	if got := GCD(0, 0); got != 0 {
		t.Errorf("GCD(0, 0) = %d, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	a, b := MustNew(1, 3), MustNew(1, 2)
	if got := Min(a, b); !got.Equal(a) {
		t.Errorf("Min = %v, want %v", got, a)
	}
	if got := Max(a, b); !got.Equal(b) {
		t.Errorf("Max = %v, want %v", got, b)
	}
}

// small draws bounded rationals so that property tests stay clear of
// legitimate overflow.
func small(n1, d1 int64) Rat {
	n := n1 % 10000
	d := d1%10000 + 10001 // always positive
	return MustNew(n, d)
}

func TestPropAddCommutes(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		x, y := small(a, b), small(c, d)
		return x.Add(y).Equal(y.Add(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMulDistributes(t *testing.T) {
	f := func(a, b, c, d, e, g int64) bool {
		x, y, z := small(a, b), small(c, d), small(e, g)
		lhs := x.Mul(y.Add(z))
		rhs := x.Mul(y).Add(x.Mul(z))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropSubInverse(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		x, y := small(a, b), small(c, d)
		return x.Add(y).Sub(y).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropFloorCeilConsistent(t *testing.T) {
	f := func(a, b int64) bool {
		x := small(a, b)
		fl, ce := x.Floor(), x.Ceil()
		if FromInt(fl).Cmp(x) > 0 || x.Cmp(FromInt(ce)) > 0 {
			return false
		}
		if x.IsInt() {
			return fl == ce
		}
		return ce == fl+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropDivMulInverse(t *testing.T) {
	f := func(a, b, c, d int64) bool {
		x, y := small(a, b), small(c, d)
		if y.IsZero() {
			return true
		}
		return x.Div(y).Mul(y).Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropStringParseRoundTrip(t *testing.T) {
	f := func(a, b int64) bool {
		x := small(a, b)
		got, err := Parse(x.String())
		return err == nil && got.Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Reporting(t *testing.T) {
	if got := MustNew(1, 2).Float64(); got != 0.5 {
		t.Errorf("Float64(1/2) = %v, want 0.5", got)
	}
	if got := MustNew(256, 5).Float64(); got != 51.2 {
		t.Errorf("Float64(256/5) = %v, want 51.2", got)
	}
}

func TestCmpExtremeValuesNoPanic(t *testing.T) {
	// Regression: Cmp used to route through Sub/Neg, panicking on
	// MinInt64 numerators. Comparisons are always well-defined.
	min := FromInt(math.MinInt64)
	max := FromInt(math.MaxInt64)
	if min.Cmp(max) != -1 || max.Cmp(min) != 1 {
		t.Error("extreme comparison wrong")
	}
	if min.Cmp(min) != 0 {
		t.Error("MinInt64 != itself")
	}
	if !min.Less(Zero) || !Zero.Less(max) {
		t.Error("sign comparisons wrong")
	}
	big1 := MustNew(math.MaxInt64, 3)
	big2 := MustNew(math.MaxInt64-1, 3)
	if big1.Cmp(big2) != 1 {
		t.Error("large same-denominator comparison wrong")
	}
	// Cross products that overflow int64 but not the 128-bit path.
	a := MustNew(math.MaxInt64, math.MaxInt64-2)
	b := MustNew(math.MaxInt64-1, math.MaxInt64-3)
	// a ≈ 1+2/M, b ≈ 1+2/M — exact: a−b = (M(M−3)−(M−1)(M−2))/... =
	// (−3M+3M−2+... ) compute: M(M−3) = M²−3M; (M−1)(M−2) = M²−3M+2, so
	// a < b.
	if a.Cmp(b) != -1 {
		t.Errorf("128-bit comparison wrong: %v vs %v", a, b)
	}
}
