package ratio

import (
	"math/big"
	"testing"
	"testing/quick"
)

// toBig converts a Rat to the stdlib's arbitrary-precision rational.
func toBig(r Rat) *big.Rat { return big.NewRat(r.Num(), r.Den()) }

// fromParts builds a bounded Rat from fuzz input, avoiding legitimate
// overflow so every operation below must succeed and agree with big.Rat.
func fromParts(n int64, d int64) Rat {
	return MustNew(n%100000, d%100000+100001)
}

func TestCrossCheckArithmeticAgainstBigRat(t *testing.T) {
	f := func(an, ad, bn, bd int64) bool {
		a, b := fromParts(an, ad), fromParts(bn, bd)
		ba, bb := toBig(a), toBig(b)

		if got, want := toBig(a.Add(b)), new(big.Rat).Add(ba, bb); got.Cmp(want) != 0 {
			t.Logf("add %v + %v: %v != %v", a, b, got, want)
			return false
		}
		if got, want := toBig(a.Sub(b)), new(big.Rat).Sub(ba, bb); got.Cmp(want) != 0 {
			t.Logf("sub: %v != %v", got, want)
			return false
		}
		if got, want := toBig(a.Mul(b)), new(big.Rat).Mul(ba, bb); got.Cmp(want) != 0 {
			t.Logf("mul: %v != %v", got, want)
			return false
		}
		if !b.IsZero() {
			if got, want := toBig(a.Div(b)), new(big.Rat).Quo(ba, bb); got.Cmp(want) != 0 {
				t.Logf("div: %v != %v", got, want)
				return false
			}
		}
		if a.Cmp(b) != ba.Cmp(bb) {
			t.Logf("cmp(%v, %v): %d != %d", a, b, a.Cmp(b), ba.Cmp(bb))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCrossCheckFloorAgainstBigRat(t *testing.T) {
	f := func(an, ad int64) bool {
		a := fromParts(an, ad)
		ba := toBig(a)
		// Floor via big.Int division with Euclidean adjustment.
		num, den := ba.Num(), ba.Denom()
		q := new(big.Int).Div(num, den) // big.Int.Div is floored division
		return q.IsInt64() && q.Int64() == a.Floor()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCrossCheckStringAgainstBigRat(t *testing.T) {
	f := func(an, ad int64) bool {
		a := fromParts(an, ad)
		if a.IsInt() {
			return true // big.Rat prints "n/1"; ours prints "n" by design
		}
		return a.String() == toBig(a).RatString()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
