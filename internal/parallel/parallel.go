// Package parallel is the small, dependency-free worker-pool layer shared
// by the exploration paths of this library: the period sweeps of
// internal/capacity, the capacity searches of internal/minimize and the
// verification fan-outs of the commands.
//
// Map is the only scheduling primitive: it evaluates an indexed pure
// function across a bounded pool of goroutines and returns the results in
// index order. Its error semantics deliberately mirror the serial loop it
// replaces — if any evaluation fails, the error returned is the one with
// the smallest index, regardless of goroutine scheduling — so callers can
// switch between Workers == 1 and Workers == GOMAXPROCS without observing
// different results. Design-space exploration over the throughput/buffer
// trade-off curve is embarrassingly parallel (every probe is an
// independent pure computation); this package supplies the bound, the
// cancellation, the determinism and the panic isolation (a panicking
// worker is recovered into a *PanicError instead of killing the process),
// and nothing else.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers normalises a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), the number of OS threads executing Go code.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// PanicError is a worker panic recovered by Map, carrying the panic value
// and the goroutine stack captured at the panic site. Map converts panics
// into errors so that one faulty evaluation cannot take down the process or
// leak the pool's goroutines; the stack makes the fault debuggable after
// the fact.
type PanicError struct {
	// Index is the evaluation index whose fn call panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the formatted stack of the panicking goroutine.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: evaluation %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// call evaluates fn(i), converting a panic into a *PanicError so the worker
// goroutine survives and the pool's first-error semantics apply to panics
// exactly as they do to returned errors.
func call[T any](fn func(i int) (T, error), i int) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// Map evaluates fn(i) for every i in [0, n) using at most workers
// goroutines (<= 0 means GOMAXPROCS) and returns the n results in index
// order.
//
// Error semantics mirror a serial loop that stops at the first failure: if
// any evaluation fails, Map returns the error of the smallest failing
// index, every index below that one is guaranteed to have been evaluated,
// and indices above it may be skipped. A cancelled context is reported the
// same way, as the failure of the smallest unevaluated index. A panicking
// evaluation is recovered into a *PanicError carrying the stack and ranked
// like any other failure, so a panic neither crashes the process nor leaks
// a goroutine. fn must be safe for concurrent calls when more than one
// worker runs.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	var next atomic.Int64
	var firstBad atomic.Int64 // lowest failing index; n = no failure
	firstBad.Store(int64(n))
	fail := func(i int64, err error) {
		errs[i] = err
		for {
			cur := firstBad.Load()
			if i >= cur || firstBad.CompareAndSwap(cur, i) {
				return
			}
		}
	}
	var wg sync.WaitGroup
	for range w {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) || i >= firstBad.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(i, err)
					return
				}
				v, err := call(fn, int(i))
				if err != nil {
					fail(i, err)
					continue
				}
				results[i] = v
			}
		}()
	}
	wg.Wait()
	if bad := firstBad.Load(); bad < int64(n) {
		return nil, errs[bad]
	}
	return results, nil
}
