package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := Map(context.Background(), workers, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got, err := Map(context.Background(), 4, 0, func(int) (int, error) { return 0, nil }); err != nil || got != nil {
		t.Fatalf("n=0: got %v, %v", got, err)
	}
	got, err := Map(context.Background(), 4, 1, func(i int) (string, error) { return "x", nil })
	if err != nil || len(got) != 1 || got[0] != "x" {
		t.Fatalf("n=1: got %v, %v", got, err)
	}
}

// TestMapLowestIndexError pins the determinism contract: when several
// evaluations fail, Map reports the failure a serial loop would have hit
// first, not whichever goroutine lost the race.
func TestMapLowestIndexError(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		var evaluated [32]atomic.Bool
		_, err := Map(context.Background(), 8, 32, func(i int) (int, error) {
			evaluated[i].Store(true)
			// Make the higher-index failure finish first.
			if i == 19 {
				return 0, fmt.Errorf("fail at %d", i)
			}
			if i == 5 {
				time.Sleep(time.Millisecond)
				return 0, fmt.Errorf("fail at %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "fail at 5" {
			t.Fatalf("trial %d: err = %v, want fail at 5", trial, err)
		}
		for i := 0; i < 5; i++ {
			if !evaluated[i].Load() {
				t.Fatalf("trial %d: index %d below the failure was skipped", trial, i)
			}
		}
	}
}

func TestMapWorkerBound(t *testing.T) {
	var cur, peak atomic.Int64
	const workers = 3
	_, err := Map(context.Background(), workers, 50, func(i int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent evaluations, bound is %d", p, workers)
	}
}

func TestMapContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Map(ctx, 2, 1_000_000, func(i int) (int, error) {
			if ran.Add(1) == 10 {
				cancel()
			}
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop the pool")
	}
	if n := ran.Load(); n > 10_000 {
		t.Errorf("%d evaluations ran after cancellation", n)
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Probes: 12, Events: 3456, CacheHits: 7, Workers: 4, Wall: 1500 * time.Microsecond, CPU: 6 * time.Millisecond}
	want := "probes=12 sim_events=3456 workers=4 wall=1.5ms cpu=6ms events_per_sec=2304000 cache_hits=7"
	if s.String() != want {
		t.Errorf("String() = %q, want %q", s.String(), want)
	}
	if eps := s.EventsPerSec(); eps != 2304000 {
		t.Errorf("EventsPerSec() = %v, want 2304000", eps)
	}
	if eps := (Stats{Events: 10}).EventsPerSec(); eps != 0 {
		t.Errorf("EventsPerSec() before timer stop = %v, want 0", eps)
	}
}

func TestTimerMeasuresWall(t *testing.T) {
	timer := StartTimer()
	time.Sleep(2 * time.Millisecond)
	var s Stats
	timer.Stop(&s)
	if s.Wall < 2*time.Millisecond {
		t.Errorf("Wall = %v, want >= 2ms", s.Wall)
	}
	if s.CPU < 0 {
		t.Errorf("CPU = %v, want >= 0", s.CPU)
	}
}
