//go:build !unix

package parallel

import "time"

// processCPUTime is unavailable without rusage; Stats.CPU stays zero.
func processCPUTime() time.Duration { return 0 }
