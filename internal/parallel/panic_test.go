package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// noLeakedGoroutines fails the test if the goroutine count does not return
// to its starting level. The runtime needs a moment to reap exited
// goroutines, so the check polls briefly before giving up.
func noLeakedGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

// panicIn panics deliberately from a named function so the recovered stack
// has a recognisable frame to assert on.
func panicIn(msg string) int {
	panic(msg)
}

func TestMapRecoversWorkerPanic(t *testing.T) {
	before := runtime.NumGoroutine()
	_, err := Map(context.Background(), 4, 32, func(i int) (int, error) {
		if i == 7 {
			return panicIn("kaboom"), nil
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("Map returned nil error for a panicking evaluation")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Index != 7 {
		t.Errorf("PanicError.Index = %d, want 7", pe.Index)
	}
	if pe.Value != "kaboom" {
		t.Errorf("PanicError.Value = %v, want kaboom", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "panicIn") {
		t.Errorf("PanicError.Stack does not name the panic site:\n%s", pe.Stack)
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("Error() = %q, want the panic value in the message", err.Error())
	}
	noLeakedGoroutines(t, before)
}

// TestMapPanicKeepsWorkerAlive pins that a recovered panic does not kill
// the worker goroutine: with one worker and an early panic, every lower
// index must still have been evaluated (the first-error contract needs the
// worker to keep draining until the cutoff is decided).
func TestMapPanicKeepsWorkerAlive(t *testing.T) {
	var evaluated [8]bool
	_, err := Map(context.Background(), 1, 8, func(i int) (int, error) {
		evaluated[i] = true
		if i == 2 {
			panic("early")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("err = %v, want PanicError at index 2", err)
	}
	for i := 0; i <= 2; i++ {
		if !evaluated[i] {
			t.Errorf("index %d below the panic was skipped", i)
		}
	}
}

// TestMapAllWorkersPanic: every evaluation panics; Map must return the
// panic of the lowest index and all workers must come home.
func TestMapAllWorkersPanic(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 10; trial++ {
		_, err := Map(context.Background(), 8, 64, func(i int) (int, error) {
			panic(fmt.Sprintf("p%d", i))
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("trial %d: err = %v, want *PanicError", trial, err)
		}
		if pe.Index != 0 || pe.Value != "p0" {
			t.Fatalf("trial %d: got panic of index %d (%v), want index 0", trial, pe.Index, pe.Value)
		}
	}
	noLeakedGoroutines(t, before)
}

// TestMapPanicLosesToLowerError pins the ranking: a panic at a high index
// must not displace a plain error at a lower index.
func TestMapPanicLosesToLowerError(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		_, err := Map(context.Background(), 8, 32, func(i int) (int, error) {
			if i == 20 {
				panic("late panic")
			}
			if i == 3 {
				time.Sleep(time.Millisecond) // let the panic land first
				return 0, errors.New("early error")
			}
			return i, nil
		})
		if err == nil || err.Error() != "early error" {
			t.Fatalf("trial %d: err = %v, want the lower-index error", trial, err)
		}
	}
}

func TestMapCancelledMidMapNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	_, err := Map(ctx, 4, 10_000, func(i int) (int, error) {
		if i == 50 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	noLeakedGoroutines(t, before)
	cancel()
}

// TestMapPanicUnderCancellation mixes both failure modes concurrently; the
// pool must neither deadlock nor leak whichever wins the race.
func TestMapPanicUnderCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 10; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		_, err := Map(ctx, 4, 1000, func(i int) (int, error) {
			if i == 10 {
				cancel()
			}
			if i == 11 {
				panic("race")
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("trial %d: nil error", trial)
		}
		cancel()
	}
	noLeakedGoroutines(t, before)
}
