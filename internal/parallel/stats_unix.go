//go:build unix

package parallel

import (
	"syscall"
	"time"
)

// processCPUTime returns the cumulative user+system CPU time of the
// process, or 0 when rusage is unavailable.
func processCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
