package parallel

import (
	"fmt"
	"time"
)

// Stats is the lightweight run-stats record of one exploration run — the
// library's first observability hook. Commands print it after their work so
// operators can see how much probing a result cost and how well the pool
// used the machine (CPU/Wall approaches the worker count when the probes
// saturate their cores).
type Stats struct {
	// Probes counts the independent evaluations dispatched: periods
	// analysed, feasibility checks, verification runs — the caller
	// defines the unit.
	Probes int64
	// Events counts discrete-event simulator events processed by the
	// probes; 0 for purely analytic runs.
	Events int64
	// CacheHits counts probes answered by a feasibility cache without
	// simulating (see minimize.Result.CacheHits); 0 when no cached
	// search ran.
	CacheHits int64
	// Workers is the worker bound the run used.
	Workers int
	// Wall and CPU are the elapsed wall-clock and process CPU time. CPU
	// is zero on platforms without rusage support.
	Wall time.Duration
	CPU  time.Duration
}

// EventsPerSec returns the simulated-event throughput over the wall time,
// or 0 before the timer was stopped.
func (s Stats) EventsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Events) / s.Wall.Seconds()
}

// String renders the stats in the one-line form the commands print.
func (s Stats) String() string {
	return fmt.Sprintf("probes=%d sim_events=%d workers=%d wall=%s cpu=%s events_per_sec=%.0f cache_hits=%d",
		s.Probes, s.Events, s.Workers,
		s.Wall.Round(time.Microsecond), s.CPU.Round(time.Microsecond),
		s.EventsPerSec(), s.CacheHits)
}

// Timer measures the wall and CPU time of a run for a Stats record.
type Timer struct {
	wall time.Time
	cpu  time.Duration
}

// StartTimer begins measuring wall and process CPU time.
func StartTimer() Timer {
	return Timer{wall: time.Now(), cpu: processCPUTime()}
}

// Stop fills s.Wall and s.CPU with the time elapsed since StartTimer.
func (t Timer) Stop(s *Stats) {
	s.Wall = time.Since(t.wall)
	if c := processCPUTime(); c > 0 {
		s.CPU = c - t.cpu
	}
}
