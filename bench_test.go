// Benchmarks regenerating every figure and table of Wiggers et al. (DATE
// 2008) plus the ablations called out in DESIGN.md. Each benchmark both
// measures the cost of the corresponding computation and asserts that the
// regenerated numbers match the paper (or the documented reading of them),
// reporting the headline values as custom metrics. See EXPERIMENTS.md for
// the paper-vs-measured record.
package vrdfcap

import (
	"math"
	"testing"

	"vrdfcap/internal/bounds"
	"vrdfcap/internal/capacity"
	"vrdfcap/internal/cheap"
	"vrdfcap/internal/csdf"
	"vrdfcap/internal/exact"
	"vrdfcap/internal/minimize"
	"vrdfcap/internal/mp3"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sdf"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
	"vrdfcap/internal/trace"
	"vrdfcap/internal/video"
	"vrdfcap/internal/vrdf"
)

func figure1Graph(b *testing.B) *Graph {
	b.Helper()
	g, err := Pair("wa", Rat(1, 1), "wb", Rat(1, 1), Quanta(3), Quanta(2, 3))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func mp3Graph(b *testing.B) *Graph {
	b.Helper()
	g, err := mp3.Graph()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkFigure1MotivatingExample regenerates the §1 example: the
// minimum deadlock-free capacity is 3 under the all-3 stream and 4 under
// the all-2 stream (and 5 when alternating, which the paper's prose
// implies but does not list).
func BenchmarkFigure1MotivatingExample(b *testing.B) {
	g := figure1Graph(b)
	var n3, n2, alt int64
	var probes, cached int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		probes, cached = 0, 0
		for _, c := range []struct {
			seq  quanta.Sequence
			dest *int64
		}{
			{quanta.Constant(3), &n3},
			{quanta.Constant(2), &n2},
			{quanta.Cycle(2, 3), &alt},
		} {
			check := minimize.DeadlockFreeCheck(g, "wb", 100, []sim.Workloads{
				{"wa->wb": {Cons: c.seq}},
			})
			res, err := minimize.Search([]string{"wa->wb"}, map[string]int64{"wa->wb": 16}, check)
			if err != nil {
				b.Fatal(err)
			}
			*c.dest = res.Caps["wa->wb"]
			probes += res.Checks
			cached += res.CacheHits
		}
	}
	if n3 != 3 || n2 != 4 || alt != 5 {
		b.Fatalf("minimal capacities = (%d, %d, %d), want (3, 4, 5)", n3, n2, alt)
	}
	b.ReportMetric(float64(n3), "cap_n3")
	b.ReportMetric(float64(n2), "cap_n2")
	b.ReportMetric(float64(alt), "cap_alt")
	b.ReportMetric(float64(probes), "probes_sim")
	b.ReportMetric(float64(cached), "probes_cached")
}

// BenchmarkFigure2ModelConstruction regenerates Figure 2: constructing the
// VRDF analysis graph (two opposite edges per buffer, capacity as initial
// tokens on the space edge) from the Figure-1 task graph.
func BenchmarkFigure2ModelConstruction(b *testing.B) {
	g := figure1Graph(b)
	g.Buffers()[0].Capacity = 7
	var edges int
	for i := 0; i < b.N; i++ {
		vg, m, err := vrdf.FromTaskGraph(g)
		if err != nil {
			b.Fatal(err)
		}
		if err := vrdf.CheckBufferSymmetry(vg, m); err != nil {
			b.Fatal(err)
		}
		edges = len(vg.Edges())
	}
	if edges != 2 {
		b.Fatalf("VRDF pair has %d edges, want 2", edges)
	}
	b.ReportMetric(float64(edges), "edges")
}

// BenchmarkFigure3ScheduleBounds regenerates Figure 3: the consumer's
// alternating 2,3 schedule against the linear bounds — execute the strictly
// periodic schedule, record every transfer and check the consumption lower
// bound is conservative.
func BenchmarkFigure3ScheduleBounds(b *testing.B) {
	g := figure1Graph(b)
	con := Constraint{Task: "wb", Period: Rat(3, 1)}
	res, err := capacity.Compute(g, con, capacity.PolicyEquation4)
	if err != nil {
		b.Fatal(err)
	}
	lines := res.Buffers[0].AnchoredLines()
	sized, err := capacity.Sized(g, res)
	if err != nil {
		b.Fatal(err)
	}
	var events int64
	for i := 0; i < b.N; i++ {
		cfg, m, err := sim.TaskGraphConfig(sized, sim.Workloads{"wa->wb": {Cons: quanta.Cycle(2, 3)}})
		if err != nil {
			b.Fatal(err)
		}
		cfg.Stop = sim.Stop{Actor: "wb", Firings: 100}
		cfg.RecordTransfers = []string{m.Pairs[0].Data}
		cfg.ExtraTimes = []ratio.Rat{lines.ConsumerOffset, con.Period}
		cfg.Actors = map[string]sim.ActorConfig{
			"wb": {Mode: sim.Periodic, Offset: lines.ConsumerOffset, Period: con.Period},
		}
		run, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if run.Outcome != sim.Completed {
			b.Fatalf("outcome %v", run.Outcome)
		}
		if v := bounds.CheckLower(lines.DataLower, trace.ToEvents(run.Transfers[m.Pairs[0].Data], run.Base, false)); v != nil {
			b.Fatalf("consumption bound violated: %v", v)
		}
		events = run.Events
	}
	b.ReportMetric(float64(events), "events")
}

// BenchmarkFigure4BoundDistance regenerates Figure 4: the minimum distance
// between token-transfer bounds, Equations (1)–(3), for the Figure-2 pair
// with m̂ = 3 and τ = 3.
func BenchmarkFigure4BoundDistance(b *testing.B) {
	var d bounds.PairDistances
	for i := 0; i < b.N; i++ {
		var err error
		d, err = bounds.Distances(Rat(1, 1), Rat(1, 1), Rat(1, 1), 3, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	if !d.ProducerGap.Equal(Rat(3, 1)) || !d.ConsumerGap.Equal(Rat(3, 1)) || !d.SpaceGap.Equal(Rat(6, 1)) {
		b.Fatalf("Eq(1)=%v Eq(2)=%v Eq(3)=%v, want 3, 3, 6", d.ProducerGap, d.ConsumerGap, d.SpaceGap)
	}
	b.ReportMetric(d.ProducerGap.Float64(), "eq1_gap")
	b.ReportMetric(d.ConsumerGap.Float64(), "eq2_gap")
	b.ReportMetric(d.SpaceGap.Float64(), "eq3_gap")
}

// BenchmarkSection5MP3Capacities regenerates the §5 capacity table: the
// paper's response times and d1, d2, d3 under Equation (4) (6015, 3263,
// 883 — the paper prints 882 for d3) and the constant-rate baseline with
// n = 960 (5888, 3072, 882).
func BenchmarkSection5MP3Capacities(b *testing.B) {
	g := mp3Graph(b)
	c := mp3.Constraint()
	names := mp3.BufferNames()
	var eq4, base [3]int64
	for i := 0; i < b.N; i++ {
		res, err := Analyze(g, c, PolicyEquation4)
		if err != nil {
			b.Fatal(err)
		}
		bres, err := Analyze(capacity.WithConstantMaxRates(g), c, PolicyBaseline)
		if err != nil {
			b.Fatal(err)
		}
		for j, n := range names {
			eq4[j] = res.BufferByName(n).Capacity
			base[j] = bres.BufferByName(n).Capacity
		}
	}
	if eq4 != [3]int64{6015, 3263, 883} {
		b.Fatalf("Equation-4 capacities %v, want [6015 3263 883]", eq4)
	}
	if base != [3]int64{5888, 3072, 882} {
		b.Fatalf("baseline capacities %v, want [5888 3072 882]", base)
	}
	b.ReportMetric(float64(eq4[0]), "d1")
	b.ReportMetric(float64(eq4[1]), "d2")
	b.ReportMetric(float64(eq4[2]), "d3")
	b.ReportMetric(float64(base[0]), "d1_base")
	b.ReportMetric(float64(base[1]), "d2_base")
	b.ReportMetric(float64(base[2]), "d3_base")
}

// BenchmarkSection5MP3SimVerify regenerates the §5 verification: "With our
// dataflow simulator we have verified that these buffer capacities are
// indeed sufficient to satisfy the throughput constraint." Each iteration
// verifies 2205 DAC periods (50 ms of audio) under a random VBR stream.
func BenchmarkSection5MP3SimVerify(b *testing.B) {
	g := mp3Graph(b)
	c := mp3.Constraint()
	sized, _, err := Size(g, c, PolicyEquation4)
	if err != nil {
		b.Fatal(err)
	}
	w := Workloads{mp3.BufferNames()[0]: {Cons: quanta.Uniform(mp3.FrameSizes(), 2008)}}
	var events, total int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v, err := Verify(sized, c, VerifyOptions{Firings: 2205, Workloads: w})
		if err != nil {
			b.Fatal(err)
		}
		if !v.OK {
			b.Fatalf("verification failed: %s", v.Reason)
		}
		events = v.Periodic.Events
		total += v.SelfTimed.Events + v.Periodic.Events
	}
	b.ReportMetric(float64(events), "events")
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(total)/s, "events/sec")
	}
}

// BenchmarkSection5MP3Minimize measures the empirical capacity search on the
// §5 MP3 chain — the heaviest minimisation in the repo: each probe simulates
// 2205 DAC firings (50 ms of audio) through both verification phases. The
// probes_sim/probes_cached/probes_bound metrics record how much of the
// coordinate descent the monotone feasibility cache and the analytic α̂/α̌
// bounds answer without simulating; sim_events and events_per_probe record
// the residual simulation effort after checkpointed warm starts replay the
// shared probe prefixes (neither counts replayed events).
func BenchmarkSection5MP3Minimize(b *testing.B) {
	g := mp3Graph(b)
	c := mp3.Constraint()
	res, err := Analyze(g, c, PolicyEquation4)
	if err != nil {
		b.Fatal(err)
	}
	sufficient, necessary, err := capacity.SearchBounds(res, g)
	if err != nil {
		b.Fatal(err)
	}
	bnds := &minimize.Bounds{Sufficient: sufficient, Necessary: necessary}
	names := mp3.BufferNames()
	upper := make(map[string]int64, len(names))
	for _, n := range names {
		upper[n] = res.BufferByName(n).Capacity
	}
	w := []sim.Workloads{{names[0]: {Cons: quanta.Uniform(mp3.FrameSizes(), 2008)}}}
	var total, simEvents, resumed int64
	var probes, cached, bound int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stats := &minimize.ProbeStats{}
		opts := minimize.Options{Checkpoints: 8, Bounds: bnds, Stats: stats}
		check := minimize.ThroughputCheck(g, c, 2205, w, opts)
		mres, err := minimize.Search(names[:], upper, check, opts)
		if err != nil {
			b.Fatal(err)
		}
		total = mres.Total()
		probes = mres.Checks
		cached = mres.CacheHits
		bound = mres.BoundHits
		simEvents = stats.SimEvents.Load()
		resumed = stats.ResumedEvents.Load()
	}
	if total >= res.TotalCapacity() {
		b.Fatalf("empirical minimum %d not below the analytic sizing %d", total, res.TotalCapacity())
	}
	b.ReportMetric(float64(total), "min_total_capacity")
	b.ReportMetric(float64(probes), "probes_sim")
	b.ReportMetric(float64(cached), "probes_cached")
	b.ReportMetric(float64(bound), "probes_bound")
	b.ReportMetric(float64(simEvents), "sim_events")
	b.ReportMetric(float64(resumed), "resumed_events")
	if probes > 0 {
		b.ReportMetric(float64(simEvents)/float64(probes), "events_per_probe")
	}
}

// BenchmarkSection5MP3MinimizeWarm reruns the §5 minimisation against a
// pre-warmed shared feasibility frontier (what a second CLI run with
// -cache-dir sees): every probe of the coordinate descent is answered by
// the cache, so probes_sim must be exactly zero and the found minimum must
// match the cold search bit for bit.
func BenchmarkSection5MP3MinimizeWarm(b *testing.B) {
	g := mp3Graph(b)
	c := mp3.Constraint()
	res, err := Analyze(g, c, PolicyEquation4)
	if err != nil {
		b.Fatal(err)
	}
	names := mp3.BufferNames()
	upper := make(map[string]int64, len(names))
	for _, n := range names {
		upper[n] = res.BufferByName(n).Capacity
	}
	w := []sim.Workloads{{names[0]: {Cons: quanta.Uniform(mp3.FrameSizes(), 2008)}}}
	shared := probecache.NewFrontier(names[:])
	opts := minimize.Options{Cache: shared}
	cold, err := minimize.Search(names[:], upper, minimize.ThroughputCheck(g, c, 2205, w), opts)
	if err != nil {
		b.Fatal(err)
	}
	var total int64
	var probes, cached int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		check := minimize.ThroughputCheck(g, c, 2205, w)
		mres, err := minimize.Search(names[:], upper, check, opts)
		if err != nil {
			b.Fatal(err)
		}
		total = mres.Total()
		probes = mres.Checks
		cached = mres.CacheHits
	}
	if probes != 0 {
		b.Fatalf("warm search simulated %d probes, want 0", probes)
	}
	if total != cold.Total() {
		b.Fatalf("warm minimum %d diverged from cold minimum %d", total, cold.Total())
	}
	b.ReportMetric(float64(total), "min_total_capacity")
	b.ReportMetric(float64(probes), "probes_sim")
	b.ReportMetric(float64(cached), "probes_cached")
}

// BenchmarkSourceConstrainedChain exercises §4.4 on the mirrored MP3 chain:
// the source reads strictly periodically, rates propagate downstream.
func BenchmarkSourceConstrainedChain(b *testing.B) {
	g, err := Chain(
		[]Stage{
			{Name: "adc", WCRT: Rat(1, 44100)},
			{Name: "src", WCRT: Rat(1, 100)},
			{Name: "enc", WCRT: Rat(3, 125)},
			{Name: "store", WCRT: Rat(32, 625)},
		},
		[]Link{
			{Prod: Quanta(1), Cons: Quanta(441)},
			{Prod: Quanta(480), Cons: Quanta(1152)},
			{Prod: mp3.FrameSizes(), Cons: Quanta(2048)},
		},
	)
	if err != nil {
		b.Fatal(err)
	}
	c := Constraint{Task: "adc", Period: Rat(1, 44100)}
	var total int64
	for i := 0; i < b.N; i++ {
		res, err := Analyze(g, c, PolicyEquation4)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Valid {
			b.Fatalf("source-constrained chain invalid: %v", res.Diagnostics)
		}
		total = res.TotalCapacity()
	}
	b.ReportMetric(float64(total), "total_capacity")
}

// BenchmarkAblationVariabilitySweep quantifies how capacity grows with the
// spread of the consumption quanta while the maximum stays fixed at 960:
// the cost of variability that constant-rate techniques cannot see.
func BenchmarkAblationVariabilitySweep(b *testing.B) {
	mins := []int64{960, 768, 480, 96}
	caps := make([]int64, len(mins))
	c := mp3.Constraint()
	for i := 0; i < b.N; i++ {
		for j, lo := range mins {
			var set taskgraph.QuantaSet
			if lo == 960 {
				set = Quanta(960)
			} else {
				set = Quanta(lo, 960)
			}
			g, err := mp3.GraphWithFrameQuanta(set)
			if err != nil {
				b.Fatal(err)
			}
			res, err := Analyze(g, c, PolicyHybrid)
			if err != nil {
				b.Fatal(err)
			}
			caps[j] = res.BufferByName(mp3.BufferNames()[0]).Capacity
		}
	}
	// Under the hybrid policy the singleton (CBR) case enjoys the
	// gcd-granularity bound (5888); any variability at all forfeits it
	// and Equation (4) takes over (6015), independent of the spread —
	// Equation (4) depends only on the maxima.
	if caps[0] != 5888 {
		b.Fatalf("CBR capacity = %d, want 5888", caps[0])
	}
	for j := 1; j < len(caps); j++ {
		if caps[j] != 6015 {
			b.Fatalf("VBR capacity[%d] = %d, want 6015", j, caps[j])
		}
	}
	b.ReportMetric(float64(caps[0]), "cap_cbr960")
	b.ReportMetric(float64(caps[len(caps)-1]), "cap_vbr")
	b.ReportMetric(float64(caps[1]-caps[0]), "variability_cost")
}

// BenchmarkAblationPolicyGap measures the tightness gap between Equation
// (4), the hybrid refinement and the empirical deadlock-free minimum on the
// Figure-1 pair.
func BenchmarkAblationPolicyGap(b *testing.B) {
	g := figure1Graph(b)
	c := Constraint{Task: "wb", Period: Rat(3, 1)}
	var eq4, empirical int64
	for i := 0; i < b.N; i++ {
		res, err := Analyze(g, c, PolicyEquation4)
		if err != nil {
			b.Fatal(err)
		}
		eq4 = res.Buffers[0].Capacity
		check := minimize.ThroughputCheck(g, c, 200, []sim.Workloads{
			{"wa->wb": {Cons: quanta.Constant(2)}},
			{"wa->wb": {Cons: quanta.Constant(3)}},
			{"wa->wb": {Cons: quanta.Cycle(2, 3)}},
		})
		m, err := minimize.Search([]string{"wa->wb"}, map[string]int64{"wa->wb": eq4}, check)
		if err != nil {
			b.Fatal(err)
		}
		empirical = m.Caps["wa->wb"]
	}
	b.ReportMetric(float64(eq4), "cap_eq4")
	b.ReportMetric(float64(empirical), "cap_empirical")
	b.ReportMetric(float64(eq4-empirical), "gap")
}

// BenchmarkRationalVsFloat shows why the analysis uses exact rationals:
// evaluating Equation (4) in float64 across a parameter sweep mis-floors
// capacities near integer boundaries.
func BenchmarkRationalVsFloat(b *testing.B) {
	var mismatches int
	for i := 0; i < b.N; i++ {
		mismatches = 0
		for den := int64(1); den <= 60; den++ {
			for num := int64(1); num <= 60; num++ {
				mu := ratio.MustNew(num, den*7)
				rhoP := ratio.MustNew(num+den, 3)
				rhoC := ratio.MustNew(den, 9)
				d, err := bounds.Distances(mu, rhoP, rhoC, 5, 3)
				if err != nil {
					b.Fatal(err)
				}
				exact := d.SufficientTokens()
				f := (rhoP.Float64()+rhoC.Float64())/mu.Float64() + (5 - 1) + (3 - 1) + 1
				if int64(math.Floor(f)) != exact {
					mismatches++
				}
			}
		}
	}
	if mismatches == 0 {
		b.Log("float evaluation matched on this sweep; exactness still required in general")
	}
	b.ReportMetric(float64(mismatches), "float_mismatches")
}

// BenchmarkEngineVsNaiveStepping compares the event-calendar engine with a
// naive unit-tick stepper on the Figure-1 pair: same trajectory, very
// different cost profile as the time base grows.
func BenchmarkEngineVsNaiveStepping(b *testing.B) {
	g := figure1Graph(b)
	g.Buffers()[0].Capacity = 7
	const firings = 500

	b.Run("event-calendar", func(b *testing.B) {
		var fired, events int64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg, _, err := sim.TaskGraphConfig(g, sim.Workloads{"wa->wb": {Cons: quanta.Cycle(2, 3)}})
			if err != nil {
				b.Fatal(err)
			}
			cfg.Stop = sim.Stop{Actor: "wb", Firings: firings}
			res, err := sim.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Outcome != sim.Completed {
				b.Fatalf("outcome %v", res.Outcome)
			}
			fired = res.Finished["wb"]
			events += res.Events
		}
		if fired != firings {
			b.Fatalf("fired %d", fired)
		}
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(events)/s, "events/sec")
		}
	})

	// The naive stepper's cost scales with the clock resolution (ticks
	// per response time); the event calendar's does not. Response times
	// in real graphs (e.g. 1/44100 s against 51.2 ms) force resolutions
	// in the hundreds of thousands, which is why the engine is
	// event-driven.
	for _, res := range []int64{1, 1000} {
		res := res
		b.Run(map[int64]string{1: "naive-stepper/res=1", 1000: "naive-stepper/res=1000"}[res], func(b *testing.B) {
			var fired int64
			for i := 0; i < b.N; i++ {
				fired = naivePairStepper(7, firings, res)
			}
			if fired != firings {
				b.Fatalf("fired %d", fired)
			}
		})
	}
}

// naivePairStepper is a deliberately simple tick-stepping reference
// simulation of the Figure-1 pair (producer quantum 3, consumer cycle
// 2,3): it advances time one tick at a time instead of event to event.
// rho is the response time of both tasks in ticks — the clock resolution.
func naivePairStepper(capacity, consumerFirings, rho int64) int64 {
	space, data := capacity, int64(0)
	var prodLeft, consLeft int64 // remaining busy ticks, 0 = idle
	var prodQ, consQ int64
	var consFired, consStarted int64
	consSeq := []int64{2, 3}
	for t := int64(0); consFired < consumerFirings; t++ {
		// Finishes first (production at finish).
		if prodLeft > 0 {
			prodLeft--
			if prodLeft == 0 {
				data += prodQ
			}
		}
		if consLeft > 0 {
			consLeft--
			if consLeft == 0 {
				space += consQ
				consFired++
			}
		}
		// Starts (consumption at start).
		if prodLeft == 0 && space >= 3 {
			space -= 3
			prodQ = 3
			prodLeft = rho
		}
		if consLeft == 0 {
			need := consSeq[consStarted%2]
			if data >= need {
				data -= need
				consQ = need
				consStarted++
				consLeft = rho
			}
		}
	}
	return consFired
}

// BenchmarkAnalyticMCR measures the classical exact throughput analysis on
// a multirate credit loop — the machinery whose HSDF blowup motivates
// run-time approaches for big graphs.
func BenchmarkAnalyticMCR(b *testing.B) {
	g := vrdf.New()
	if _, err := g.AddActor("u", Rat(1, 3)); err != nil {
		b.Fatal(err)
	}
	if _, err := g.AddActor("v", Rat(5, 7)); err != nil {
		b.Fatal(err)
	}
	if _, err := g.AddEdge(vrdf.Edge{Name: "data", Src: "u", Dst: "v",
		Prod: Quanta(2), Cons: Quanta(3)}); err != nil {
		b.Fatal(err)
	}
	if _, err := g.AddEdge(vrdf.Edge{Name: "space", Src: "v", Dst: "u",
		Prod: Quanta(3), Cons: Quanta(2), Initial: 7}); err != nil {
		b.Fatal(err)
	}
	var period ratio.Rat
	for i := 0; i < b.N; i++ {
		var err error
		period, err = sdf.AnalyticPeriod(g, "v")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(period.Float64(), "period")
}

// BenchmarkCHEAPPipeline measures the concurrent C-HEAP runtime on the
// Figure-1 pair with the Equation-4 capacity: end-to-end firings per
// second through real goroutine synchronisation.
func BenchmarkCHEAPPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stages := []cheap.Stage[int64]{
			{
				Name: "wa",
				Prod: quanta.Constant(3),
				Work: func(k int64, _ []int64) []int64 { return []int64{k, k, k} },
			},
			{
				Name: "wb",
				Cons: quanta.Cycle(2, 3),
				Work: func(int64, []int64) []int64 { return nil },
			},
		}
		p, err := cheap.NewPipeline(stages, []int64{7})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Run(2000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPatternKnowledge quantifies what knowing the exact
// cyclo-static pattern is worth: Equation (4) (which sees only the quanta
// sets) against the empirical minimum under the exact cyclic workload.
func BenchmarkAblationPatternKnowledge(b *testing.B) {
	chain, err := csdf.BuildChain(
		[]csdf.Stage{
			{Name: "src", WCRT: Rat(1, 8)},
			{Name: "fir", WCRT: Rat(1, 8)},
			{Name: "snk", WCRT: Rat(1, 8)},
		},
		[]csdf.Link{
			{Prod: csdf.Pattern{2}, Cons: csdf.Pattern{3, 1}},
			{Prod: csdf.Pattern{1, 3}, Cons: csdf.Pattern{2}},
		},
	)
	if err != nil {
		b.Fatal(err)
	}
	con := Constraint{Task: "snk", Period: Rat(1, 1)}
	var eq4Total, patternTotal int64
	for i := 0; i < b.N; i++ {
		min, res, err := chain.PatternMinimalCapacities(con, 200)
		if err != nil {
			b.Fatal(err)
		}
		eq4Total = res.TotalCapacity()
		patternTotal = 0
		for _, v := range min {
			patternTotal += v
		}
	}
	if patternTotal > eq4Total {
		b.Fatalf("pattern minimum %d above Equation 4 %d", patternTotal, eq4Total)
	}
	b.ReportMetric(float64(eq4Total), "cap_eq4")
	b.ReportMetric(float64(patternTotal), "cap_pattern")
	b.ReportMetric(float64(eq4Total-patternTotal), "knowledge_gain")
}

// BenchmarkVideoCaseStudy is a second, video-rate case study (the paper's
// intro motivates audio *and* video): a 25 Hz QCIF playback chain with a
// variable-length decoder, sized and spot-checked against closed forms.
func BenchmarkVideoCaseStudy(b *testing.B) {
	g, err := video.Graph()
	if err != nil {
		b.Fatal(err)
	}
	c := video.Constraint()
	var caps [3]int64
	for i := 0; i < b.N; i++ {
		res, err := Analyze(g, c, PolicyEquation4)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Valid {
			b.Fatalf("infeasible: %v", res.Diagnostics)
		}
		for j, n := range video.BufferNames() {
			caps[j] = res.BufferByName(n).Capacity
		}
	}
	if caps != [3]int64{6143, 219, 144} {
		b.Fatalf("capacities = %v, want [6143 219 144]", caps)
	}
	b.ReportMetric(float64(caps[0]), "d1")
	b.ReportMetric(float64(caps[1]), "d2")
	b.ReportMetric(float64(caps[2]), "d3")
}

// BenchmarkExactAdversarialMinimum computes the true minimum deadlock-free
// capacity of the Figure-1 pair over ALL quanta sequences by state-space
// search (with witness extraction), pinning the gap to Equation (4)'s
// untimed floor π̂+γ̂−1.
func BenchmarkExactAdversarialMinimum(b *testing.B) {
	prod := Quanta(3)
	cons := Quanta(2, 3)
	var min int64
	for i := 0; i < b.N; i++ {
		var err error
		min, err = exact.MinCapacity(prod, cons)
		if err != nil {
			b.Fatal(err)
		}
	}
	if min != 5 {
		b.Fatalf("exact minimum = %d, want 5", min)
	}
	b.ReportMetric(float64(min), "cap_exact")
	b.ReportMetric(float64(prod.Max()+cons.Max()-1), "cap_eq4_untimed")
}
