package vrdfcap

import (
	"bytes"
	"strings"
	"testing"

	"vrdfcap/internal/mp3"
)

func TestQuickstartFlow(t *testing.T) {
	// The package-comment example, end to end.
	g, err := Chain(
		[]Stage{
			{Name: "producer", WCRT: Rat(1, 1)},
			{Name: "consumer", WCRT: Rat(1, 1)},
		},
		[]Link{{Prod: Quanta(3), Cons: Quanta(2, 3)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(g, Constraint{Task: "consumer", Period: Rat(3, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Buffers[0].Capacity != 7 {
		t.Errorf("quickstart capacity = %d, want 7", res.Buffers[0].Capacity)
	}
	sized, res2, err := Size(g, Constraint{Task: "consumer", Period: Rat(3, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if sized.Buffers()[0].Capacity != res2.Buffers[0].Capacity {
		t.Error("Size did not apply capacities")
	}
	v, err := Verify(sized, Constraint{Task: "consumer", Period: Rat(3, 1)}, VerifyOptions{
		Firings:   200,
		Workloads: Workloads{"producer->consumer": {Cons: CycleSeq(2, 3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Errorf("verification failed: %s", v.Reason)
	}
}

func TestMP3EndToEndThroughFacade(t *testing.T) {
	g, err := mp3.Graph()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(g, mp3.Constraint(), PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.TotalCapacity(); got != 6015+3263+883 {
		t.Errorf("total = %d", got)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"vDAC", "6015", "3263", "883", "sink-constrained", "total capacity"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportShowsDiagnostics(t *testing.T) {
	g, err := Pair("wa", Rat(7, 2), "wb", Rat(1, 1), Quanta(3), Quanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(g, Constraint{Task: "wb", Period: Rat(3, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "WARNING") || !strings.Contains(out, "VIOLATED") {
		t.Errorf("infeasible analysis not flagged:\n%s", out)
	}
}

func TestWriteVerification(t *testing.T) {
	g, err := Pair("wa", Rat(1, 1), "wb", Rat(1, 1), Quanta(3), Quanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	sized, _, err := Size(g, Constraint{Task: "wb", Period: Rat(3, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Verify(sized, Constraint{Task: "wb", Period: Rat(3, 1)}, VerifyOptions{
		Firings:   100,
		Workloads: Workloads{"wa->wb": {Cons: ConstantSeq(2)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVerification(&buf, v); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "verified") {
		t.Errorf("verification output:\n%s", buf.String())
	}
}

func TestJSONAndDOTFacade(t *testing.T) {
	g, err := mp3.Graph()
	if err != nil {
		t.Fatal(err)
	}
	c := mp3.Constraint()
	data, err := EncodeJSON(g, &c)
	if err != nil {
		t.Fatal(err)
	}
	g2, c2, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == nil || len(g2.Tasks()) != 4 {
		t.Error("JSON round trip lost data")
	}
	var dot bytes.Buffer
	if err := WriteDOT(&dot, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph") {
		t.Error("DOT output broken")
	}
	var vdot bytes.Buffer
	if err := WriteVRDFDOT(&vdot, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vdot.String(), "space:") {
		t.Error("VRDF DOT lacks space edges")
	}
}

func TestHelpers(t *testing.T) {
	if Rat(6, 4).String() != "3/2" {
		t.Error("Rat not canonical")
	}
	r, err := ParseRat("1/44100")
	if err != nil || r.Den() != 44100 {
		t.Errorf("ParseRat: %v, %v", r, err)
	}
	q, err := QuantaRange(2, 4)
	if err != nil || q.Len() != 3 {
		t.Errorf("QuantaRange: %v, %v", q, err)
	}
	if UniformSeq(Quanta(2, 3), 1).At(0) == 0 {
		t.Error("UniformSeq returned zero")
	}
	w := UniformWorkloads(mustMP3(t), 1)
	if len(w) != 3 {
		t.Errorf("UniformWorkloads entries = %d", len(w))
	}
	if NewGraph() == nil {
		t.Error("NewGraph returned nil")
	}
	if _, err := NewQuanta(); err == nil {
		t.Error("NewQuanta() accepted empty set")
	}
}

func mustMP3(t *testing.T) *Graph {
	t.Helper()
	g, err := mp3.Graph()
	if err != nil {
		t.Fatal(err)
	}
	return g
}
