package vrdfcap_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vrdfcap"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestWriteDegradationGolden pins the exact rendering of the degradation
// report — column alignment, verdict spelling, and both slack summaries —
// against golden files. Run with -update to regenerate after a deliberate
// format change.
func TestWriteDegradationGolden(t *testing.T) {
	cases := []struct {
		name  string
		curve *vrdfcap.DegradationCurve
	}{
		{
			// Every point passes: the summary reports the slack as a lower
			// bound at the last factor swept.
			name: "all_pass",
			curve: &vrdfcap.DegradationCurve{Points: []vrdfcap.DegradationPoint{
				{Factor: vrdfcap.Rat(1, 1), OK: true},
				{Factor: vrdfcap.Rat(11, 10), OK: true},
				{Factor: vrdfcap.Rat(6, 5), OK: true},
			}},
		},
		{
			// Degradation at the third factor: the table carries the failure
			// reason and the summary names the first failing factor with the
			// slack of the passing prefix.
			name: "first_failure",
			curve: &vrdfcap.DegradationCurve{Points: []vrdfcap.DegradationPoint{
				{Factor: vrdfcap.Rat(1, 1), OK: true},
				{Factor: vrdfcap.Rat(5, 4), OK: true},
				{Factor: vrdfcap.Rat(3, 2), OK: false, Reason: "periodic phase underrun: task sink firing 7"},
				{Factor: vrdfcap.Rat(7, 4), OK: false, Reason: "periodic phase underrun: task sink firing 2"},
			}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := vrdfcap.WriteDegradation(&buf, tc.curve); err != nil {
				t.Fatalf("WriteDegradation: %v", err)
			}
			golden := filepath.Join("testdata", "degradation_"+tc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatalf("writing golden file: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("report drifted from %s (regenerate with -update if deliberate)\n--- got ---\n%s--- want ---\n%s",
					golden, buf.Bytes(), want)
			}
		})
	}
}
