package vrdfcap_test

import (
	"fmt"
	"log"

	"vrdfcap"
)

// The paper's running example: a producer that always emits 3 containers
// feeding a data-dependent consumer that takes 2 or 3, with a throughput
// constraint on the consumer.
func ExampleAnalyze() {
	g, err := vrdfcap.Pair(
		"wa", vrdfcap.Rat(1, 1),
		"wb", vrdfcap.Rat(1, 1),
		vrdfcap.Quanta(3), vrdfcap.Quanta(2, 3),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := vrdfcap.Analyze(g,
		vrdfcap.Constraint{Task: "wb", Period: vrdfcap.Rat(3, 1)},
		vrdfcap.PolicyEquation4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("capacity:", res.Buffers[0].Capacity)
	fmt.Println("feasible:", res.Valid)
	// Output:
	// capacity: 7
	// feasible: true
}

// Sizing and verifying in one flow: Size returns a capacitated copy of the
// graph, Verify replays it on the discrete-event simulator.
func ExampleVerify() {
	g, err := vrdfcap.Pair(
		"wa", vrdfcap.Rat(1, 1),
		"wb", vrdfcap.Rat(1, 1),
		vrdfcap.Quanta(3), vrdfcap.Quanta(2, 3),
	)
	if err != nil {
		log.Fatal(err)
	}
	c := vrdfcap.Constraint{Task: "wb", Period: vrdfcap.Rat(3, 1)}
	sized, _, err := vrdfcap.Size(g, c, vrdfcap.PolicyEquation4)
	if err != nil {
		log.Fatal(err)
	}
	v, err := vrdfcap.Verify(sized, c, vrdfcap.VerifyOptions{
		Firings:   300,
		Workloads: vrdfcap.Workloads{"wa->wb": {Cons: vrdfcap.CycleSeq(2, 3)}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sustained:", v.OK)
	// Output:
	// sustained: true
}

// An infeasible constraint is diagnosed, not sized around: here the
// producer's response time exceeds the start distance the constraint
// demands.
func ExampleAnalyze_infeasible() {
	g, err := vrdfcap.Pair(
		"slow", vrdfcap.Rat(5, 1),
		"sink", vrdfcap.Rat(1, 1),
		vrdfcap.Quanta(3), vrdfcap.Quanta(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := vrdfcap.Analyze(g,
		vrdfcap.Constraint{Task: "sink", Period: vrdfcap.Rat(3, 1)},
		vrdfcap.PolicyEquation4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("feasible:", res.Valid)
	for _, ck := range res.Checks {
		if !ck.OK {
			fmt.Printf("%s: ρ=%s > φ=%s\n", ck.Task, ck.Rho, ck.Phi)
		}
	}
	// Output:
	// feasible: false
	// slow: ρ=5 > φ=3
}

// The throughput/buffer trade-off: relaxing the consumer's period shrinks
// the required buffer.
func ExampleSweepPeriods() {
	g, err := vrdfcap.Pair(
		"wa", vrdfcap.Rat(1, 1),
		"wb", vrdfcap.Rat(1, 1),
		vrdfcap.Quanta(3), vrdfcap.Quanta(2, 3),
	)
	if err != nil {
		log.Fatal(err)
	}
	periods := []vrdfcap.RatNum{vrdfcap.Rat(3, 1), vrdfcap.Rat(6, 1), vrdfcap.Rat(12, 1)}
	pts, err := vrdfcap.SweepPeriods(g, "wb", periods, vrdfcap.PolicyEquation4)
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range pts {
		fmt.Printf("τ=%s -> %d containers\n", pt.Period, pt.Total)
	}
	// Output:
	// τ=3 -> 7 containers
	// τ=6 -> 6 containers
	// τ=12 -> 5 containers
}

// Deriving κ from arbiter settings (§3.1): a task with a 0.25 ms WCET on a
// TDM wheel of 4 ms owning a 1 ms slice.
func ExampleResponseTime() {
	tdm := vrdfcap.TDM{
		Slice: vrdfcap.Rat(1, 1000),
		Frame: vrdfcap.Rat(1, 250),
	}
	rho, err := vrdfcap.ResponseTime(tdm, vrdfcap.Rat(1, 4000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("κ =", rho)
	// Output:
	// κ = 13/4000
}
