package vrdfcap_test

import (
	"io"
	"testing"

	"vrdfcap"
)

// BenchmarkWriteReport tracks the allocation cost of rendering an analysis
// report; the pooled tabwriters keep repeat renders from re-growing their
// cell buffers (compare with -benchmem).
func BenchmarkWriteReport(b *testing.B) {
	g, err := vrdfcap.Pair("wa", vrdfcap.Rat(1, 1), "wb", vrdfcap.Rat(1, 1),
		vrdfcap.Quanta(3), vrdfcap.Quanta(2, 3))
	if err != nil {
		b.Fatal(err)
	}
	res, err := vrdfcap.Analyze(g, vrdfcap.Constraint{Task: "wb", Period: vrdfcap.Rat(3, 1)},
		vrdfcap.PolicyEquation4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vrdfcap.WriteReport(io.Discard, res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteDegradation(b *testing.B) {
	curve := &vrdfcap.DegradationCurve{Points: []vrdfcap.DegradationPoint{
		{Factor: vrdfcap.Rat(1, 1), OK: true},
		{Factor: vrdfcap.Rat(5, 4), OK: true},
		{Factor: vrdfcap.Rat(3, 2), OK: false, Reason: "periodic phase underrun: task sink firing 7"},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vrdfcap.WriteDegradation(io.Discard, curve); err != nil {
			b.Fatal(err)
		}
	}
}
