package vrdfcap

import (
	"fmt"
	"reflect"
	"testing"

	"vrdfcap/internal/capacity"
	"vrdfcap/internal/graphgen"
	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
)

// TestSoundnessFuzzSinkConstrained is the library's keystone test: for
// randomly generated feasible chains, the capacities computed by Equation
// (4) must let the simulator sustain the strictly periodic sink under
// adversarial and random workloads. This exercises the paper's central
// theorem end to end — analysis, construction, simulation — on graphs far
// beyond the MP3 case study. Each seed is an independent chain, so the
// subtests fan out across test workers.
func TestSoundnessFuzzSinkConstrained(t *testing.T) {
	seeds := int64(40)
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := graphgen.Defaults(seed)
			cfg.ZeroConsumption = seed%4 == 0
			g, c, err := graphgen.Random(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkSoundness(t, g, c, seed)
		})
	}
}

// TestSoundnessFuzzSourceConstrained mirrors the fuzz for §4.4.
func TestSoundnessFuzzSourceConstrained(t *testing.T) {
	seeds := int64(25)
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(100); seed < 100+seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := graphgen.Defaults(seed)
			cfg.SourceConstrained = true
			g, c, err := graphgen.Random(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkSoundness(t, g, c, seed)
		})
	}
}

func checkSoundness(t *testing.T, g *Graph, c Constraint, seed int64) {
	t.Helper()
	res, err := capacity.Compute(g, c, capacity.PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("generated chain infeasible: %v", res.Diagnostics)
	}
	sized, err := capacity.Sized(g, res)
	if err != nil {
		t.Fatal(err)
	}
	workloads := []Workloads{
		sim.UniformWorkloads(sized, seed),
		sim.AdversarialWorkloads(sized, sim.AdversaryMin),
		sim.AdversarialWorkloads(sized, sim.AdversaryMax),
		sim.AdversarialWorkloads(sized, sim.AdversaryAlternate),
	}
	// Half the runs also use variable execution times below the WCRTs:
	// by monotonicity (Definition 1), faster firings never break a
	// sizing that holds at worst case.
	exec := make(map[string]func(k int64) ratio.Rat, len(sized.Tasks()))
	var extra []ratio.Rat
	for _, task := range sized.Tasks() {
		rho := task.WCRT
		quarter := rho.DivInt(4)
		extra = append(extra, quarter)
		exec[task.Name] = func(k int64) ratio.Rat {
			return quarter.MulInt(k%4 + 1) // ρ/4 … ρ, varying per firing
		}
	}
	for wi, w := range workloads {
		opts := VerifyOptions{
			Firings:   200,
			Workloads: w,
			Validate:  true,
		}
		if wi%2 == 1 {
			opts.Exec = exec
			opts.ExtraTimes = extra
		}
		v, err := Verify(sized, c, opts)
		if err != nil {
			t.Fatalf("workload %d: %v", wi, err)
		}
		if !v.OK {
			t.Errorf("workload %d (varexec=%v): Equation-4 sizing failed verification: %s\ngraph: %s",
				wi, wi%2 == 1, v.Reason, describe(sized, c))
		}
	}
}

// describe renders a failing chain compactly for the error message.
func describe(g *Graph, c Constraint) string {
	s := fmt.Sprintf("constraint %s@%s;", c.Task, c.Period)
	for _, b := range g.Buffers() {
		s += fmt.Sprintf(" %s ξ=%v λ=%v ζ=%d;", b.DefaultName(), b.Prod, b.Cons, b.Capacity)
	}
	for _, w := range g.Tasks() {
		s += fmt.Sprintf(" ρ(%s)=%v;", w.Name, w.WCRT)
	}
	return s
}

// TestZeroConsumptionWorkloadsRun exercises the §4.2 corner the paper
// highlights ("we allow the situation in which actor vb has firings in
// which it does not consume any tokens"): chains whose consumers sometimes
// consume nothing still verify.
func TestZeroConsumptionWorkloadsRun(t *testing.T) {
	g, err := Chain(
		[]Stage{
			{Name: "src", WCRT: Rat(1, 4)},
			{Name: "dec", WCRT: Rat(1, 4)},
		},
		[]Link{{Prod: Quanta(2), Cons: Quanta(0, 2, 3)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	c := Constraint{Task: "dec", Period: Rat(1, 1)}
	sized, res, err := Size(g, c, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("zero-consumption chain rejected: %v", res.Diagnostics)
	}
	v, err := Verify(sized, c, VerifyOptions{
		Firings:   300,
		Workloads: Workloads{"src->dec": {Cons: quanta.Cycle(0, 3, 2, 0, 2)}},
		Validate:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Errorf("zero-consumption verification failed: %s", v.Reason)
	}
}

// TestHybridPolicySoundness re-runs the fuzz against the hybrid policy,
// which must stay sound while being at least as tight as Equation (4).
func TestHybridPolicySoundness(t *testing.T) {
	seeds := int64(15)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(200); seed < 200+seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			g, c, err := graphgen.Random(graphgen.Defaults(seed))
			if err != nil {
				t.Fatal(err)
			}
			eq4, err := capacity.Compute(g, c, capacity.PolicyEquation4)
			if err != nil {
				t.Fatal(err)
			}
			hyb, err := capacity.Compute(g, c, capacity.PolicyHybrid)
			if err != nil {
				t.Fatal(err)
			}
			if hyb.TotalCapacity() > eq4.TotalCapacity() {
				t.Fatalf("hybrid (%d) looser than Equation 4 (%d)", hyb.TotalCapacity(), eq4.TotalCapacity())
			}
			sized, err := capacity.Sized(g, hyb)
			if err != nil {
				t.Fatal(err)
			}
			for _, adv := range sim.Adversaries {
				v, err := Verify(sized, c, VerifyOptions{
					Firings:   150,
					Workloads: sim.AdversarialWorkloads(sized, adv),
				})
				if err != nil {
					t.Fatal(err)
				}
				if !v.OK {
					t.Errorf("adversary %v: hybrid sizing failed: %s\n%s",
						adv, v.Reason, describe(sized, c))
				}
			}
		})
	}
}

// TestFreshVsReusedEngineEquivalence extends the seeded-random-chain fuzz
// to the compiled-machine API: sim.Run (fresh engine per run) and a reused
// Machine (compile once, Reset between runs) must produce bit-identical
// Results — including capacity probes via initial-token overrides — and a
// reused Verifier must match the one-shot VerifyThroughput.
func TestFreshVsReusedEngineEquivalence(t *testing.T) {
	for seed := int64(400); seed < 404; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			g, c, err := graphgen.Random(graphgen.Defaults(seed))
			if err != nil {
				t.Fatal(err)
			}
			sized, res, err := Size(g, c, PolicyEquation4)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Valid {
				t.Fatalf("generated chain infeasible: %v", res.Diagnostics)
			}
			wl := sim.UniformWorkloads(sized, seed)
			cfg, mapping, err := sim.TaskGraphConfig(sized, wl)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Stop = sim.Stop{Actor: c.Task, Firings: 120}
			cfg.Validate = true
			fresh, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if fresh.Outcome != sim.Completed {
				t.Fatalf("sized chain did not complete: %v", fresh.Outcome)
			}
			mach, err := sim.Compile(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 2; rep++ {
				if rep > 0 {
					if err := mach.Reset(nil); err != nil {
						t.Fatal(err)
					}
				}
				got, err := mach.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(fresh, got) {
					t.Fatalf("rep %d: reused machine diverged from the fresh run", rep)
				}
			}

			// Starve the first buffer down to one container via a Reset
			// override: whatever the outcome (typically Deadlocked), the
			// probe must match a fresh run of a graph resized to 1.
			buf := sized.Buffers()[0].DefaultName()
			pair, ok := mapping.Pair(buf)
			if !ok {
				t.Fatalf("no vrdf mapping for %s", buf)
			}
			small := sized.Clone()
			small.BufferByName(buf).Capacity = 1
			scfg, _, err := sim.TaskGraphConfig(small, wl)
			if err != nil {
				t.Fatal(err)
			}
			scfg.Stop = cfg.Stop
			scfg.Validate = true
			sfresh, err := sim.Run(scfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := mach.Reset(map[string]int64{pair.Space: 1}); err != nil {
				t.Fatal(err)
			}
			sgot, err := mach.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sfresh, sgot) {
				t.Fatalf("override probe diverged from the fresh run (outcome %v vs %v)",
					sgot.Outcome, sfresh.Outcome)
			}

			// Verifier reuse: repeated Verify calls on one compiled
			// verifier match the one-shot VerifyThroughput wrapper.
			opts := VerifyOptions{Firings: 120, Workloads: wl, Validate: true}
			ref, err := Verify(sized, c, opts)
			if err != nil {
				t.Fatal(err)
			}
			vf, err := sim.CompileVerifier(sized, c, opts)
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 2; rep++ {
				got, err := vf.Verify(nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("rep %d: reused verifier diverged from VerifyThroughput", rep)
				}
			}
		})
	}
}

// TestExactCertificationOfEquation4Sizings goes beyond simulation: for
// random small chains, the Equation-4 sizing is certified deadlock-free by
// exhaustive adversarial search over ALL coupled quanta sequences.
func TestExactCertificationOfEquation4Sizings(t *testing.T) {
	seeds := int64(20)
	if testing.Short() {
		seeds = 5
	}
	certified := 0
	for seed := int64(300); seed < 300+seeds; seed++ {
		cfg := graphgen.Defaults(seed)
		cfg.MaxTasks = 3
		cfg.MaxQuantum = 4
		cfg.MaxSetSize = 2
		g, c, err := graphgen.Random(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sized, res, err := Size(g, c, PolicyEquation4)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Valid {
			t.Fatalf("seed %d: infeasible", seed)
		}
		ok, w, err := CertifyDeadlockFree(sized, 500_000)
		if err != nil {
			// State space too large for this seed; skip, the point
			// is the certified ones.
			continue
		}
		if !ok {
			t.Errorf("seed %d: Equation-4 sizing deadlocks! witness %+v\n%s",
				seed, w, describe(sized, c))
		}
		certified++
	}
	if certified == 0 {
		t.Error("no chain was small enough to certify; loosen the generator bounds")
	}
}
