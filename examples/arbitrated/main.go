// Arbitrated pipeline: deriving the worst-case response times κ from
// arbiter settings (paper §3.1) before sizing the buffers.
//
// The paper assumes "all shared resources have run-time arbiters" that
// guarantee a worst-case response time from the worst-case execution time
// and the scheduler settings — TDM and round-robin are named. This example
// runs a three-task audio effect chain on two processors: the decoder owns
// one CPU (dedicated), while the effect and the output driver share the
// second CPU under TDM. The κ values fed to the analysis come from the
// arbiter model, and the example shows how shrinking the TDM slice
// eventually breaks the throughput guarantee.
package main

import (
	"fmt"
	"log"
	"os"

	"vrdfcap"
)

func main() {
	// Worst-case execution times (seconds).
	decWCET := vrdfcap.Rat(1, 2000) // 0.5 ms per block of 64 samples
	fxWCET := vrdfcap.Rat(1, 4000)  // 0.25 ms
	outWCET := vrdfcap.Rat(1, 8000) // 0.125 ms

	// CPU 1 is dedicated to the decoder; CPU 2 runs fx and out under
	// TDM with a 4 ms frame.
	frame := vrdfcap.Rat(1, 250)
	fxTDM := vrdfcap.TDM{Slice: vrdfcap.Rat(1, 1000), Frame: frame}  // 1 ms slice
	outTDM := vrdfcap.TDM{Slice: vrdfcap.Rat(1, 2000), Frame: frame} // 0.5 ms slice

	fxRho, err := vrdfcap.ResponseTime(fxTDM, fxWCET)
	if err != nil {
		log.Fatal(err)
	}
	outRho, err := vrdfcap.ResponseTime(outTDM, outWCET)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived response times: κ(dec)=%v s, κ(fx)=%v s, κ(out)=%v s\n",
		decWCET, fxRho, outRho)

	build := func(fxRho, outRho vrdfcap.RatNum) *vrdfcap.Graph {
		g, err := vrdfcap.Chain(
			[]vrdfcap.Stage{
				{Name: "dec", WCRT: decWCET},
				{Name: "fx", WCRT: fxRho},
				{Name: "out", WCRT: outRho},
			},
			[]vrdfcap.Link{
				// The decoder emits 64 samples per block; the effect
				// consumes a data-dependent window of 32 or 64.
				{Prod: vrdfcap.Quanta(64), Cons: vrdfcap.Quanta(32, 64)},
				// The effect emits what it consumed; the driver takes 8.
				{Prod: vrdfcap.Quanta(32, 64), Cons: vrdfcap.Quanta(8)},
			},
		)
		if err != nil {
			log.Fatal(err)
		}
		return g
	}

	// The output driver hands one 8-sample packet to the DMA engine
	// every 10 ms control period.
	c := vrdfcap.Constraint{Task: "out", Period: vrdfcap.Rat(1, 100)}
	res, err := vrdfcap.Analyze(build(fxRho, outRho), c, vrdfcap.PolicyEquation4)
	if err != nil {
		log.Fatal(err)
	}
	if err := vrdfcap.WriteReport(os.Stdout, res); err != nil {
		log.Fatal(err)
	}

	// Starve the effect task: a 1/64000 s slice needs 16 TDM rounds per
	// execution, blowing its response time past φ(fx); the analysis must
	// refuse the guarantee.
	starved := vrdfcap.TDM{Slice: vrdfcap.Rat(1, 64000), Frame: frame}
	starvedRho, err := vrdfcap.ResponseTime(starved, fxWCET)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith a starved TDM slice, κ(fx) grows to %v s:\n", starvedRho)
	res, err = vrdfcap.Analyze(build(starvedRho, outRho), c, vrdfcap.PolicyEquation4)
	if err != nil {
		log.Fatal(err)
	}
	if res.Valid {
		log.Fatal("expected the starved configuration to be rejected")
	}
	for _, d := range res.Diagnostics {
		fmt.Println("  diagnostic:", d)
	}
	fmt.Println("the analysis correctly refuses a guarantee — fix the arbiter, not the buffers.")
}
