// Motivating example (paper §1, Figure 1): why buffer sizing for
// data-dependent communication cannot just assume the maximum quantum.
//
// Task wa produces 3 containers per execution; task wb consumes 2 or 3.
// The minimum deadlock-free capacity is 3 when wb always consumes 3 — but
// 4 when it always consumes 2, and 5 when it alternates. This program
// measures those minima with the simulator, then shows the capacity the
// paper's analysis guarantees for a throughput constraint.
package main

import (
	"fmt"
	"log"

	"vrdfcap"
	"vrdfcap/internal/minimize"
	"vrdfcap/internal/quanta"
	"vrdfcap/internal/sim"
)

const buffer = "wa->wb"

func main() {
	g, err := vrdfcap.Pair("wa", vrdfcap.Rat(1, 1), "wb", vrdfcap.Rat(1, 1),
		vrdfcap.Quanta(3), vrdfcap.Quanta(2, 3))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("task graph: wa --3/{2,3}--> wb (Figure 1)")
	fmt.Println("\nminimum deadlock-free capacity per consumption pattern:")
	patterns := []struct {
		name string
		seq  vrdfcap.Sequence
	}{
		{"n = 3 in every execution", quanta.Constant(3)},
		{"n = 2 in every execution", quanta.Constant(2)},
		{"n alternating 2, 3, 2, 3, …", quanta.Cycle(2, 3)},
	}
	for _, p := range patterns {
		check := minimize.DeadlockFreeCheck(g, "wb", 300, []sim.Workloads{
			{buffer: {Cons: p.seq}},
		})
		res, err := minimize.Search([]string{buffer}, map[string]int64{buffer: 32}, check)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-30s -> %d containers\n", p.name, res.Caps[buffer])
	}
	fmt.Println("\nmaximising the consumption quantum (n=3) is NOT safe for other")
	fmt.Println("quanta — exactly the paper's point: 3 containers deadlock when n=2.")

	// What the analysis guarantees, including throughput: wb strictly
	// periodic with period 3.
	c := vrdfcap.Constraint{Task: "wb", Period: vrdfcap.Rat(3, 1)}
	res, err := vrdfcap.Analyze(g, c, vrdfcap.PolicyEquation4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEquation (4) capacity for period τ = 3: %d containers\n", res.Buffers[0].Capacity)
	fmt.Println("(sufficient for EVERY sequence of consumption quanta, with the")
	fmt.Println("throughput guarantee — not just deadlock freedom)")

	// Cross-check with the throughput-preserving empirical minimum.
	check := minimize.ThroughputCheck(g, c, 300, []sim.Workloads{
		{buffer: {Cons: quanta.Constant(2)}},
		{buffer: {Cons: quanta.Constant(3)}},
		{buffer: {Cons: quanta.Cycle(2, 3)}},
	})
	minRes, err := minimize.Search([]string{buffer}, map[string]int64{buffer: res.Buffers[0].Capacity}, check)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nempirical throughput-preserving minimum over three adversaries: %d\n", minRes.Caps[buffer])
	fmt.Println("(Equation (4) is sufficient and close to tight)")
}
