// Real concurrent execution: size the buffers with the analysis, then run
// the task graph as actual goroutines communicating over C-HEAP circular
// buffers — the implementation style the paper's task model abstracts
// (reference [8]).
//
// The pipeline parses a synthetic variable-length byte stream: a reader
// produces fixed 48-byte blocks, a parser consumes data-dependent records
// of 8–24 bytes and emits 12-byte units, and a writer drains 4 units per
// firing. The analysis picks the buffer capacities; the concurrent run
// validates them with real synchronisation (run the tests with -race for
// the full check).
package main

import (
	"fmt"
	"log"
	"time"

	"vrdfcap"
	"vrdfcap/internal/cheap"
	"vrdfcap/internal/quanta"
)

func main() {
	recordSizes := vrdfcap.Quanta(8, 12, 16, 24)
	g, err := vrdfcap.Chain(
		[]vrdfcap.Stage{
			{Name: "reader", WCRT: vrdfcap.Rat(1, 1000)},
			{Name: "parser", WCRT: vrdfcap.Rat(1, 2000)},
			{Name: "writer", WCRT: vrdfcap.Rat(1, 4000)},
		},
		[]vrdfcap.Link{
			{Prod: vrdfcap.Quanta(48), Cons: recordSizes},
			{Prod: vrdfcap.Quanta(12), Cons: vrdfcap.Quanta(4)},
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	c := vrdfcap.Constraint{Task: "writer", Period: vrdfcap.Rat(1, 1500)}
	_, res, err := vrdfcap.Size(g, c, vrdfcap.PolicyEquation4)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Valid {
		log.Fatalf("infeasible: %v", res.Diagnostics)
	}
	caps := []int64{res.Buffers[0].Capacity, res.Buffers[1].Capacity}
	fmt.Printf("analysis: capacities %v containers (total %d)\n", caps, res.TotalCapacity())

	// The record stream the parser will see (data dependent, seeded).
	records := quanta.Uniform(recordSizes, 7)

	var produced, consumed int64
	stages := []cheap.Stage[byte]{
		{
			Name: "reader",
			Prod: quanta.Constant(48),
			Work: func(k int64, _ []byte) []byte {
				out := make([]byte, 48)
				for i := range out {
					out[i] = byte(produced % 251)
					produced++
				}
				return out
			},
		},
		{
			Name: "parser",
			Cons: records,
			Prod: quanta.Constant(12),
			Work: func(k int64, in []byte) []byte {
				// Verify stream continuity, then emit one unit.
				for _, b := range in {
					if b != byte(consumed%251) {
						log.Fatalf("stream corrupted at byte %d", consumed)
					}
					consumed++
				}
				return make([]byte, 12)
			},
		},
		{
			Name: "writer",
			Cons: quanta.Constant(4),
			Work: func(int64, []byte) []byte { return nil },
		},
	}
	p, err := cheap.NewPipeline(stages, caps)
	if err != nil {
		log.Fatal(err)
	}
	const firings = 30000
	start := time.Now()
	if err := p.Run(firings); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("concurrent run: %d writer firings in %v (%.0f firings/s), %d bytes parsed, stream intact\n",
		firings, elapsed.Round(time.Millisecond),
		float64(firings)/elapsed.Seconds(), consumed)
	fmt.Println("no deadlock, no corruption: the computed capacities hold up under real concurrency.")
}
