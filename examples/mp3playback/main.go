// MP3 playback (paper §5, Figure 5): size the buffers of a four-task MP3
// chain with a variable bit-rate stream, export the graphs, and listen to
// one simulated second of playback.
//
//	vBR --2048/n--> vMP3 --1152/480--> vSRC --441/1--> vDAC @ 44.1 kHz
//
// This example drives the public API end to end: build the Figure-5 graph
// from the mp3 application model, analyse it, write the DOT and JSON
// artefacts, and verify the sizing against a synthetic VBR stream.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vrdfcap"
	"vrdfcap/internal/mp3"
	"vrdfcap/internal/quanta"
)

func main() {
	g, err := mp3.Graph()
	if err != nil {
		log.Fatal(err)
	}
	c := mp3.Constraint()

	sized, res, err := vrdfcap.Size(g, c, vrdfcap.PolicyEquation4)
	if err != nil {
		log.Fatal(err)
	}
	if err := vrdfcap.WriteReport(os.Stdout, res); err != nil {
		log.Fatal(err)
	}

	// Export the sized task graph and its VRDF analysis graph.
	dir := os.TempDir()
	dotPath := filepath.Join(dir, "mp3-taskgraph.dot")
	f, err := os.Create(dotPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := vrdfcap.WriteDOT(f, sized); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "mp3-sized.json")
	data, err := vrdfcap.EncodeJSON(sized, &c)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s and %s\n", dotPath, jsonPath)

	// One second of simulated playback under a random VBR stream.
	fmt.Println("\nsimulating one second of playback (44100 DAC firings)...")
	v, err := vrdfcap.Verify(sized, c, vrdfcap.VerifyOptions{
		Firings: 44100,
		Workloads: vrdfcap.Workloads{
			mp3.BufferNames()[0]: {Cons: quanta.Uniform(mp3.FrameSizes(), 42)},
		},
		Validate: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := vrdfcap.WriteVerification(os.Stdout, v); err != nil {
		log.Fatal(err)
	}
	if !v.OK {
		os.Exit(1)
	}
	fmt.Println("\nthe DAC never starved: the computed capacities satisfy the 44.1 kHz constraint.")
}
