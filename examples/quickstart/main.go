// Quickstart: size one producer–consumer buffer with a data-dependent
// consumer and verify the result by simulation.
//
// The graph is the paper's running example (Figures 1 and 2): task wa
// produces 3 containers per execution; task wb consumes either 2 or 3,
// decided by the data. wb must run strictly periodically with period 3.
package main

import (
	"fmt"
	"log"
	"os"

	"vrdfcap"
)

func main() {
	// 1. Describe the task graph: names, worst-case response times and
	//    per-buffer transfer quanta.
	g, err := vrdfcap.Chain(
		[]vrdfcap.Stage{
			{Name: "wa", WCRT: vrdfcap.Rat(1, 1)},
			{Name: "wb", WCRT: vrdfcap.Rat(1, 1)},
		},
		[]vrdfcap.Link{{
			Prod: vrdfcap.Quanta(3),    // ξ: always 3 containers
			Cons: vrdfcap.Quanta(2, 3), // λ: 2 or 3, data dependent
		}},
	)
	if err != nil {
		log.Fatal(err)
	}

	// 2. State the throughput constraint and compute capacities with the
	//    paper's Equation (4).
	c := vrdfcap.Constraint{Task: "wb", Period: vrdfcap.Rat(3, 1)}
	sized, res, err := vrdfcap.Size(g, c, vrdfcap.PolicyEquation4)
	if err != nil {
		log.Fatal(err)
	}
	if err := vrdfcap.WriteReport(os.Stdout, res); err != nil {
		log.Fatal(err)
	}

	// 3. Verify by simulation under an adversarial consumption stream.
	v, err := vrdfcap.Verify(sized, c, vrdfcap.VerifyOptions{
		Firings:   1000,
		Workloads: vrdfcap.Workloads{"wa->wb": {Cons: vrdfcap.CycleSeq(2, 3)}},
		Validate:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := vrdfcap.WriteVerification(os.Stdout, v); err != nil {
		log.Fatal(err)
	}
}
