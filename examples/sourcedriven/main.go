// Source-driven pipeline (paper §4.4): the throughput constraint sits on
// the task WITHOUT input buffers.
//
// A camera must capture strictly periodically at 30 frames per second — it
// cannot be stalled by back-pressure, or frames are lost. It produces a
// data-dependent number of blocks per capture (compressed frame size, 2–4
// blocks); an encoder consumes a fixed 4 blocks; a writer stores one packet
// per encoder output. Under a source constraint the §4.4 rules apply:
// rates propagate downstream, production is maximised and consumption
// minimised, and the schedule-validity condition moves to the consumers.
package main

import (
	"fmt"
	"log"
	"os"

	"vrdfcap"
)

func main() {
	g, err := vrdfcap.Chain(
		[]vrdfcap.Stage{
			{Name: "camera", WCRT: vrdfcap.Rat(1, 60)},
			{Name: "encoder", WCRT: vrdfcap.Rat(1, 60)},
			{Name: "writer", WCRT: vrdfcap.Rat(1, 60)},
		},
		[]vrdfcap.Link{
			{Prod: vrdfcap.Quanta(2, 3, 4), Cons: vrdfcap.Quanta(4)},
			{Prod: vrdfcap.Quanta(1), Cons: vrdfcap.Quanta(1)},
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	// The SOURCE is the constrained task: 30 captures per second.
	c := vrdfcap.Constraint{Task: "camera", Period: vrdfcap.Rat(1, 30)}
	sized, res, err := vrdfcap.Size(g, c, vrdfcap.PolicyEquation4)
	if err != nil {
		log.Fatal(err)
	}
	if err := vrdfcap.WriteReport(os.Stdout, res); err != nil {
		log.Fatal(err)
	}

	// Verify: the camera must never block on a full buffer, whatever the
	// compressed frame sizes turn out to be.
	for _, wl := range []struct {
		name string
		seq  vrdfcap.Sequence
	}{
		{"small frames (2 blocks)", vrdfcap.ConstantSeq(2)},
		{"large frames (4 blocks)", vrdfcap.ConstantSeq(4)},
		{"mixed frames", vrdfcap.CycleSeq(2, 4, 3, 4, 2)},
		{"random frames", vrdfcap.UniformSeq(vrdfcap.Quanta(2, 3, 4), 9)},
	} {
		v, err := vrdfcap.Verify(sized, c, vrdfcap.VerifyOptions{
			Firings:   900, // 30 seconds of capture
			Workloads: vrdfcap.Workloads{"camera->encoder": {Prod: wl.seq}},
			Validate:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if !v.OK {
			status = "FAILED: " + v.Reason
		}
		fmt.Printf("%-26s %s\n", wl.name, status)
		if !v.OK {
			os.Exit(1)
		}
	}
	fmt.Println("\nthe camera was never stalled by back-pressure: §4.4 capacities hold.")
}
