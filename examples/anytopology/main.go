// Beyond chains (paper §6): the VRDF *simulator* already handles arbitrary
// topologies, including cycles — the paper's future work is the analysis,
// not the execution model.
//
// This example builds a three-actor ring (a feedback loop: each stage
// passes a data-dependent batch of 1 or 2 tokens to the next) and measures
// self-timed throughput as a function of the tokens circulating in the
// ring — the classic token/latency trade-off curve that a general-topology
// VRDF analysis would have to predict. The batch size of each actor is the
// same on its input and output edge (one shared per-firing sequence), so
// tokens are conserved on the ring.
package main

import (
	"fmt"
	"log"

	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
	"vrdfcap/internal/vrdf"
)

func ring(initial int64) (*vrdf.Graph, map[string]sim.EdgeQuanta, error) {
	g := vrdf.New()
	names := []string{"a", "b", "c"}
	for _, n := range names {
		if _, err := g.AddActor(n, ratio.One); err != nil {
			return nil, nil, err
		}
	}
	batch := taskgraph.MustQuanta(1, 2)
	q := make(map[string]sim.EdgeQuanta, len(names))
	// Per-actor batch sequences; the consumption on the incoming edge
	// and production on the outgoing edge of one actor share a
	// sequence, so each firing forwards exactly what it consumed.
	seqs := map[string]quanta.Sequence{
		"a": quanta.Cycle(1, 2, 2),
		"b": quanta.Cycle(2, 1),
		"c": quanta.Uniform(batch, 3),
	}
	for i, n := range names {
		next := names[(i+1)%len(names)]
		tokens := int64(0)
		if i == 0 {
			tokens = initial
		}
		e, err := g.AddEdge(vrdf.Edge{
			Name: n + "->" + next, Src: n, Dst: next,
			Prod: batch, Cons: batch, Initial: tokens,
		})
		if err != nil {
			return nil, nil, err
		}
		// Producer n forwards seqs[n]; consumer next takes seqs[next].
		q[e.Name] = sim.EdgeQuanta{Prod: seqs[n], Cons: seqs[next]}
	}
	return g, q, nil
}

func main() {
	fmt.Println("three-actor VRDF ring, data-dependent batches {1,2}, ρ = 1 each")
	fmt.Println("ring tokens -> measured self-timed period of actor a:")
	for d := int64(1); d <= 6; d++ {
		g, q, err := ring(d)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Graph:        g,
			Quanta:       q,
			Stop:         sim.Stop{Actor: "a", Firings: 300},
			RecordStarts: []string{"a"},
			Validate:     true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Outcome == sim.Deadlocked {
			// Note: with variable batches even d = 2 (the maximum
			// batch) deadlocks — the circulating tokens split across
			// edges while every actor demands its maximum. Another
			// facet of the paper's point that maxima are not enough.
			fmt.Printf("  d=%d: deadlock —", d)
			for _, blk := range res.Deadlock.Blocked {
				fmt.Printf(" %s needs %d on %s (has %d);", blk.Actor, blk.Need, blk.Edge, blk.Have)
			}
			fmt.Println()
			continue
		}
		if res.Outcome != sim.Completed {
			log.Fatalf("d=%d: %v", d, res.Outcome)
		}
		avg, err := sim.AveragePeriodTicks(res.Starts["a"])
		if err != nil {
			log.Fatal(err)
		}
		period := avg.DivInt(res.Base.TicksPerUnit)
		fmt.Printf("  d=%d: average period %8s  (%.4f time units)\n", d, period, period.Float64())
	}
	fmt.Println("\nmore circulating tokens buy throughput until the actors' response")
	fmt.Println("times dominate — the curve a general-topology VRDF analysis (the")
	fmt.Println("paper's future work) would need to bound. Sizing such rings is out")
	fmt.Println("of scope for the chain algorithm; simulation quantifies them today.")
}
