// Platform dimensioning: from worst-case execution times to a guaranteed
// system in one pass.
//
// The paper assumes response times κ that "run-time arbiters can guarantee
// given the worst-case execution times and the scheduler settings" (§3.1).
// This example goes the other way round: given the WCETs of a four-stage
// video-scaler chain, two TDM-arbitrated processors and a binding, it
// derives the TDM slices from the minimal start distances φ the throughput
// constraint demands, reports the processor loads, and sizes the buffers —
// then shows how moving a heavy task onto an already busy processor
// overflows the TDM wheel and voids the guarantee.
package main

import (
	"fmt"
	"log"
	"os"

	"vrdfcap"
)

func main() {
	g, err := vrdfcap.Chain(
		[]vrdfcap.Stage{
			{Name: "capture", WCRT: vrdfcap.Rat(1, 1)}, // κ values are outputs here;
			{Name: "scale", WCRT: vrdfcap.Rat(1, 1)},   // placeholders satisfy the builder
			{Name: "enhance", WCRT: vrdfcap.Rat(1, 1)},
			{Name: "display", WCRT: vrdfcap.Rat(1, 1)},
		},
		[]vrdfcap.Link{
			// Data-dependent scaler: consumes 8 lines, emits 4–6.
			{Prod: vrdfcap.Quanta(8), Cons: vrdfcap.Quanta(8)},
			{Prod: vrdfcap.Quanta(4, 5, 6), Cons: vrdfcap.Quanta(2)},
			{Prod: vrdfcap.Quanta(2), Cons: vrdfcap.Quanta(1)},
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	c := vrdfcap.Constraint{Task: "display", Period: vrdfcap.Rat(1, 100)}

	platform := vrdfcap.Platform{
		Processors: []vrdfcap.Processor{
			{Name: "dsp", Frame: vrdfcap.Rat(1, 100)},
			{Name: "cpu", Frame: vrdfcap.Rat(1, 200)},
		},
		Bindings: []vrdfcap.Binding{
			{Task: "capture", Processor: "dsp", WCET: vrdfcap.Rat(1, 200)},
			{Task: "scale", Processor: "dsp", WCET: vrdfcap.Rat(1, 250)},
			{Task: "enhance", Processor: "cpu", WCET: vrdfcap.Rat(1, 2000)},
			{Task: "display", Processor: "cpu", WCET: vrdfcap.Rat(1, 1000)},
		},
	}
	res, err := vrdfcap.Dimension(g, c, platform, vrdfcap.PolicyEquation4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-task TDM slices (deadline = φ from the constraint):")
	for _, ta := range res.Tasks {
		fmt.Printf("  %-8s on %-4s WCET %-7s slice %-8s -> κ = %-9s (φ = %s)\n",
			ta.Task, ta.Processor, ta.WCET, ta.Slice, ta.Rho, ta.Phi)
	}
	fmt.Println("processor loads:")
	for _, p := range res.Processors {
		fmt.Printf("  %-4s utilisation %s (%.1f%%), fits=%v\n",
			p.Processor, p.Utilisation, p.Utilisation.Float64()*100, p.Fits)
	}
	if !res.Feasible {
		log.Fatalf("expected a feasible dimensioning, got: %v", res.Diagnostics)
	}
	fmt.Printf("buffers: total %d containers, all guarantees hold\n\n", res.Analysis.TotalCapacity())

	// Overload the DSP: bind the enhancement stage there too.
	platform.Bindings[2].Processor = "dsp"
	platform.Bindings[2].WCET = vrdfcap.Rat(1, 150) // heavier on the DSP
	res, err = vrdfcap.Dimension(g, c, platform, vrdfcap.PolicyEquation4)
	if err != nil {
		log.Fatal(err)
	}
	if res.Feasible {
		log.Fatal("expected the overloaded DSP to be rejected")
	}
	fmt.Println("after moving 'enhance' onto the DSP:")
	for _, d := range res.Diagnostics {
		fmt.Println("  diagnostic:", d)
	}
	fmt.Println("the wheel does not fit — the guarantee is refused before any buffer is sized.")
	os.Exit(0)
}
