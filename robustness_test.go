package vrdfcap

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFaultInjectionFacade(t *testing.T) {
	g := pairForExtras(t)
	c := Constraint{Task: "wb", Period: Rat(3, 1)}
	sized, _, err := Size(g, c, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewFaultInjector(sized, FaultSpec{Jitter: Rat(1, 2), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opts := VerifyOptions{Firings: 200, Workloads: UniformWorkloads(sized, 3)}
	inj.Apply(&opts)
	v, err := Verify(sized, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Errorf("admissible jitter failed at Eq4 capacities: %s", v.Reason)
	}
}

func TestSweepDegradationFacadeAndReport(t *testing.T) {
	g := pairForExtras(t)
	c := Constraint{Task: "wb", Period: Rat(3, 1)}
	sized, _, err := Size(g, c, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := SweepDegradation(DegradationConfig{
		Graph:        sized,
		Constraint:   c,
		Factors:      OverrunFactors(Rat(1, 1), Rat(4, 1), 4),
		OverrunEvery: 1,
		Tasks:        []string{"wb"},
		Firings:      100,
		Workloads:    Workloads{"wa->wb": {Cons: CycleSeq(2, 3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if curve.FirstFailure() == nil {
		t.Fatal("4x overrun on the constrained task did not degrade")
	}
	var sb strings.Builder
	if err := WriteDegradation(&sb, curve); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"overrun factor", "FAILED", "first failure", "slack"} {
		if !strings.Contains(out, want) {
			t.Errorf("degradation report missing %q:\n%s", want, out)
		}
	}
}

func TestVerificationDiagnosticsFacade(t *testing.T) {
	g := pairForExtras(t)
	c := Constraint{Task: "wb", Period: Rat(3, 1)}
	// Undersize deliberately: capacity 4 deadlocks under the alternating
	// consumer, and the structured diagnostic must surface in the report.
	for _, b := range g.Buffers() {
		b.Capacity = 4
	}
	v, err := Verify(g, c, VerifyOptions{
		Firings:   100,
		Workloads: Workloads{"wa->wb": {Cons: CycleSeq(2, 3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("undersized graph verified")
	}
	if v.Deadlock == nil {
		t.Fatal("Verification.Deadlock is nil on a deadlocked run")
	}
	var sb strings.Builder
	if err := WriteVerification(&sb, v); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "deadlock at tick") {
		t.Errorf("report missing structured deadlock:\n%s", sb.String())
	}
}

func TestTypedErrorsFacade(t *testing.T) {
	g := pairForExtras(t)
	c := Constraint{Task: "wb", Period: Rat(3, 1)}
	sized, _, err := Size(g, c, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Verify(sized, c, VerifyOptions{
		Firings:   100,
		Workloads: Workloads{"wa->wb": {Cons: CycleSeq(2, 3)}},
		Context:   ctx,
	})
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("cancelled Verify: err = %v, want ErrCanceled", err)
	}
	_, err = Verify(sized, c, VerifyOptions{
		Firings:   100,
		Workloads: Workloads{"wa->wb": {Cons: CycleSeq(2, 3)}},
		Deadline:  time.Now().Add(-time.Second),
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("expired Verify: err = %v, want ErrBudgetExceeded", err)
	}
}
