package vrdfcap

import (
	"testing"

	"vrdfcap/internal/mp3"
)

func pairForExtras(t *testing.T) *Graph {
	t.Helper()
	g, err := Pair("wa", Rat(1, 1), "wb", Rat(1, 1), Quanta(3), Quanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAnchoredScheduleFacade(t *testing.T) {
	g := pairForExtras(t)
	res, err := Analyze(g, Constraint{Task: "wb", Period: Rat(3, 1)}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := AnchoredSchedule(res)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.SinkOffset.Equal(Rat(3, 1)) || !cs.LatencyBound.Equal(Rat(4, 1)) {
		t.Errorf("offset %v latency %v, want 3 and 4", cs.SinkOffset, cs.LatencyBound)
	}
}

func TestSweepPeriodsFacade(t *testing.T) {
	g := pairForExtras(t)
	periods, err := GeometricPeriods(Rat(1, 1), 2, 1, 4) // 1, 2, 4, 8
	if err != nil {
		t.Fatal(err)
	}
	if len(periods) != 4 || !periods[3].Equal(Rat(8, 1)) {
		t.Fatalf("GeometricPeriods = %v", periods)
	}
	pts, err := SweepPeriods(g, "wb", periods, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Total > pts[i-1].Total {
			t.Errorf("capacity not monotone across sweep: %v", pts)
		}
	}
	min, err := MinimalFeasiblePeriod(g, "wb", periods, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if !min.Period.Equal(Rat(1, 1)) {
		t.Errorf("minimal feasible period = %v", min.Period)
	}
}

func TestGeometricPeriodsValidation(t *testing.T) {
	if _, err := GeometricPeriods(Rat(1, 1), 2, 1, 0); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := GeometricPeriods(Rat(1, 1), 1, 0, 3); err == nil {
		t.Error("zero denominator accepted")
	}
}

func TestArbiterFacade(t *testing.T) {
	tdm := TDM{Slice: Rat(1, 1000), Frame: Rat(1, 250)}
	rho, err := ResponseTime(tdm, Rat(1, 4000))
	if err != nil {
		t.Fatal(err)
	}
	// 1 slice: (1/250 - 1/1000) + 1/4000 = 13/4000.
	if !rho.Equal(Rat(13, 4000)) {
		t.Errorf("TDM response = %v, want 13/4000", rho)
	}
	rr := RoundRobin{OwnSlice: Rat(1, 1), OtherSlices: []RatNum{Rat(2, 1)}}
	rho, err = ResponseTime(rr, Rat(1, 1))
	if err != nil || !rho.Equal(Rat(3, 1)) {
		t.Errorf("RR response = %v, %v; want 3", rho, err)
	}
}

func TestSweepOnMP3Chain(t *testing.T) {
	g, err := mp3.Graph()
	if err != nil {
		t.Fatal(err)
	}
	base := mp3.Constraint().Period
	// Faster than 44.1 kHz is infeasible (the WCRTs are exactly
	// critical); 44.1 kHz and slower are feasible.
	periods := []RatNum{base.DivInt(2), base, base.MulInt(2)}
	pts, err := SweepPeriods(g, mp3.TaskDAC, periods, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Valid {
		t.Error("88.2 kHz reported feasible with critical response times")
	}
	if !pts[1].Valid || !pts[2].Valid {
		t.Error("44.1 kHz or slower reported infeasible")
	}
	if pts[1].Total != 6015+3263+883 {
		t.Errorf("44.1 kHz total = %d", pts[1].Total)
	}
	if pts[2].Total >= pts[1].Total {
		t.Errorf("relaxing the period did not shrink capacity: %d >= %d", pts[2].Total, pts[1].Total)
	}
}

func TestDimensionFacade(t *testing.T) {
	g, err := Chain(
		[]Stage{
			{Name: "a", WCRT: Rat(1, 1)},
			{Name: "b", WCRT: Rat(1, 1)},
		},
		[]Link{{Prod: Quanta(1), Cons: Quanta(1)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Dimension(g, Constraint{Task: "b", Period: Rat(12, 1)}, Platform{
		Processors: []Processor{{Name: "cpu", Frame: Rat(10, 1)}},
		Bindings: []Binding{
			{Task: "a", Processor: "cpu", WCET: Rat(1, 1)},
			{Task: "b", Processor: "cpu", WCET: Rat(1, 1)},
		},
	}, PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("infeasible: %v", res.Diagnostics)
	}
	if res.Analysis.TotalCapacity() <= 0 {
		t.Error("no capacities computed")
	}
}
