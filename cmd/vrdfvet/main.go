// Command vrdfvet is the repo's domain-invariant checker: a vet tool that
// enforces the machine reuse protocol, the //vrdf:noalloc steady-state
// contract, budgeted search loops, centralized ratio arithmetic, and
// determinism of the core packages. See internal/analysis/README.md for the
// analyzer catalogue and the annotation grammar.
//
// It speaks the `go vet -vettool` protocol, so the canonical invocation is
//
//	go build -o "$(go env GOPATH)/bin/vrdfvet" ./cmd/vrdfvet
//	go vet -vettool="$(go env GOPATH)/bin/vrdfvet" ./...
//
// As a convenience, running vrdfvet directly with package patterns
// (`vrdfvet ./...`) re-invokes `go vet -vettool=<itself>` on them, which
// gets correct per-package type information and build caching for free.
//
// Individual analyzers can be selected the same way as with go vet:
// `vrdfvet -machinereuse ./...` runs only that analyzer.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"vrdfcap/internal/analysis"
	"vrdfcap/internal/analysis/suite"
	"vrdfcap/internal/analysis/unitchecker"
)

func main() {
	analyzers := suite.All()

	// The go command's handshakes come before flag parsing.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			unitchecker.PrintVersion()
			return
		case "-flags", "--flags":
			unitchecker.PrintFlags(analyzers)
			return
		}
	}

	fs := flag.NewFlagSet("vrdfvet", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: vrdfvet [-analyzer...] <packages|vet.cfg>\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  -%s\n        %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	fs.Bool("V", false, "print version and exit")
	selected := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		selected[a.Name] = fs.Bool(a.Name, false, strings.SplitN(a.Doc, "\n", 2)[0])
	}
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	// An explicit selection narrows the suite; no selection means all.
	var run []*analysis.Analyzer
	for _, a := range analyzers {
		if *selected[a.Name] {
			run = append(run, a)
		}
	}
	if len(run) == 0 {
		run = analyzers
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitchecker.Run(args[0], run)
		return
	}

	// Standalone mode: delegate to `go vet -vettool=<self>` so the go
	// command does package loading, export data and caching.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "vrdfvet: %v\n", err)
		os.Exit(2)
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	for _, a := range run {
		if len(run) != len(analyzers) {
			vetArgs = append(vetArgs, "-"+a.Name)
		}
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	vetArgs = append(vetArgs, args...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "vrdfvet: %v\n", err)
		os.Exit(2)
	}
}
