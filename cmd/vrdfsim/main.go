// Command vrdfsim simulates a sized task graph from a JSON or text
// document and reports throughput, deadlocks and buffer occupancy.
//
// Usage:
//
//	vrdfsim [flags] graph.json
//
// Every buffer in the document must have a positive capacity. By default
// the graph runs self-timed until the stop task completes the requested
// number of firings; with -periodic the constrained task is instead forced
// onto the strictly periodic schedule (requires a "constraint" entry and
// -offset).
//
// Flags:
//
//	-task name      stop task (default: the constrained task, else the sink)
//	-firings n      firings of the stop task to run (default 1000)
//	-workload kind  uniform (default), min, max, alternate
//	-seed n         seed for the uniform workload
//	-periodic       force the constrained task strictly periodic
//	-offset r       periodic start offset, exact rational (default "0")
//	-gantt          print a start-time Gantt chart of all tasks
//	-csv-dir path   write per-buffer transfer/occupancy CSV files
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vrdfcap"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vrdfsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vrdfsim", flag.ContinueOnError)
	task := fs.String("task", "", "stop task (default: constrained task, else sink)")
	firings := fs.Int64("firings", 1000, "firings of the stop task")
	workload := fs.String("workload", "uniform", "workload kind: uniform, min, max, alternate")
	seed := fs.Int64("seed", 1, "seed for the uniform workload")
	periodic := fs.Bool("periodic", false, "force the constrained task strictly periodic")
	offsetStr := fs.String("offset", "0", "periodic start offset (exact rational)")
	gantt := fs.Bool("gantt", false, "print a Gantt chart of task start times")
	csvDir := fs.String("csv-dir", "", "write per-buffer transfer and occupancy CSV files to this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one graph file, got %d arguments", fs.NArg())
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	g, c, err := vrdfcap.DecodeGraph(data)
	if err != nil {
		return err
	}

	stop := *task
	if stop == "" {
		if c != nil {
			stop = c.Task
		} else {
			sink, err := g.Sink()
			if err != nil {
				return err
			}
			stop = sink.Name
		}
	}

	var w vrdfcap.Workloads
	switch *workload {
	case "uniform":
		w = sim.UniformWorkloads(g, *seed)
	case "min":
		w = sim.AdversarialWorkloads(g, sim.AdversaryMin)
	case "max":
		w = sim.AdversarialWorkloads(g, sim.AdversaryMax)
	case "alternate":
		w = sim.AdversarialWorkloads(g, sim.AdversaryAlternate)
	default:
		return fmt.Errorf("unknown workload %q", *workload)
	}

	cfg, mapping, err := sim.TaskGraphConfig(g, w)
	if err != nil {
		return err
	}
	cfg.Stop = sim.Stop{Actor: stop, Firings: *firings}
	cfg.Validate = true
	if *csvDir != "" {
		for _, p := range mapping.Pairs {
			cfg.RecordTransfers = append(cfg.RecordTransfers, p.Data)
			cfg.RecordOccupancy = append(cfg.RecordOccupancy, p.Data)
		}
	}
	if *gantt {
		for _, t := range g.Tasks() {
			cfg.RecordStarts = append(cfg.RecordStarts, t.Name)
		}
	} else {
		cfg.RecordStarts = []string{stop}
	}
	if *periodic {
		if c == nil {
			return fmt.Errorf("-periodic needs a constraint in the document")
		}
		offset, err := ratio.Parse(*offsetStr)
		if err != nil {
			return err
		}
		cfg.Actors = map[string]sim.ActorConfig{
			c.Task: {Mode: sim.Periodic, Offset: offset, Period: c.Period},
		}
	}

	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "outcome: %s after %d events, end time %s\n", res.Outcome, res.Events, res.Base.Rat(res.EndTick))
	if res.Underrun != nil {
		fmt.Fprintf(out, "underrun: %s\n", res.Underrun)
	}
	if res.Deadlock != nil {
		fmt.Fprintf(out, "deadlock at %s:\n", res.Base.Rat(res.Deadlock.Tick))
		for _, b := range res.Deadlock.Blocked {
			fmt.Fprintf(out, "  %s firing %d blocked on %s (%d of %d tokens)\n",
				b.Actor, b.Firing, b.Edge, b.Have, b.Need)
		}
	}
	names := make([]string, 0, len(res.Fired))
	for n := range res.Fired {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		util := 0.0
		if res.EndTick > 0 {
			util = float64(res.BusyTicks[n]) / float64(res.EndTick)
		}
		fmt.Fprintf(out, "task %-12s started %8d finished %8d utilisation %5.1f%%\n",
			n, res.Fired[n], res.Finished[n], util*100)
	}
	if starts := res.Starts[stop]; len(starts) >= 2 {
		avg, err := sim.AveragePeriodTicks(starts)
		if err == nil {
			per := avg.Div(ratio.FromInt(res.Base.TicksPerUnit))
			fmt.Fprintf(out, "average period of %s: %s (%.6g time units)\n", stop, per, per.Float64())
		}
		if j, err := sim.JitterTicks(starts); err == nil {
			fmt.Fprintf(out, "start jitter of %s: %s (peak-to-peak)\n", stop, res.Base.Rat(j))
		}
	}
	edges := make([]string, 0, len(res.Edges))
	for n := range res.Edges {
		edges = append(edges, n)
	}
	sort.Strings(edges)
	for _, n := range edges {
		s := res.Edges[n]
		fmt.Fprintf(out, "edge %-24s produced %10d consumed %10d peak %8d min %8d\n",
			n, s.Produced, s.Consumed, s.Peak, s.Min)
	}
	if *gantt {
		fmt.Fprintln(out)
		if err := trace.Gantt(out, res.Starts, res.Base, 72); err != nil {
			return err
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		for _, p := range mapping.Pairs {
			safe := strings.NewReplacer("/", "_", ":", "_", ">", "").Replace(p.Data)
			tf, err := os.Create(filepath.Join(*csvDir, safe+"_transfers.csv"))
			if err != nil {
				return err
			}
			if err := trace.WriteTransfersCSV(tf, res.Transfers[p.Data], res.Base); err != nil {
				_ = tf.Close() // the write error is the one worth reporting
				return err
			}
			if err := tf.Close(); err != nil {
				return err
			}
			of, err := os.Create(filepath.Join(*csvDir, safe+"_occupancy.csv"))
			if err != nil {
				return err
			}
			if err := trace.WriteOccupancyCSV(of, res.Occupancy[p.Data], res.Base); err != nil {
				_ = of.Close() // the write error is the one worth reporting
				return err
			}
			if err := of.Close(); err != nil {
				return err
			}
			if stats, err := trace.SummariseOccupancy(res.Occupancy[p.Data], res.EndTick); err == nil {
				fmt.Fprintf(out, "buffer %-16s occupancy peak %6d mean %8.2f\n",
					p.Buffer, stats.Peak, stats.Mean.Float64())
			}
		}
		fmt.Fprintf(out, "wrote CSV files to %s\n", *csvDir)
	}
	return nil
}
