package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vrdfcap"
)

// writePairJSON writes the Figure-1 pair, sized with the given capacity.
func writePairJSON(t *testing.T, capacity int64, withConstraint bool) string {
	t.Helper()
	g, err := vrdfcap.Pair("wa", vrdfcap.Rat(1, 1), "wb", vrdfcap.Rat(1, 1),
		vrdfcap.Quanta(3), vrdfcap.Quanta(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	g.Buffers()[0].Capacity = capacity
	var c *vrdfcap.Constraint
	if withConstraint {
		c = &vrdfcap.Constraint{Task: "wb", Period: vrdfcap.Rat(3, 1)}
	}
	data, err := vrdfcap.EncodeJSON(g, c)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pair.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSimSelfTimed(t *testing.T) {
	path := writePairJSON(t, 7, true)
	var out bytes.Buffer
	if err := run([]string{"-firings", "100", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"outcome: completed", "task wa", "task wb", "average period", "edge "} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestSimWorkloadVariants(t *testing.T) {
	path := writePairJSON(t, 7, true)
	for _, w := range []string{"uniform", "min", "max", "alternate"} {
		var out bytes.Buffer
		if err := run([]string{"-firings", "50", "-workload", w, path}, &out); err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if !strings.Contains(out.String(), "outcome: completed") {
			t.Errorf("%s: run did not complete:\n%s", w, out.String())
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-workload", "bogus", path}, &out); err == nil {
		t.Error("bogus workload accepted")
	}
}

func TestSimDeadlockReport(t *testing.T) {
	path := writePairJSON(t, 3, true)
	var out bytes.Buffer
	if err := run([]string{"-firings", "100", "-workload", "min", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "outcome: deadlocked") || !strings.Contains(text, "blocked on") {
		t.Errorf("deadlock not reported:\n%s", text)
	}
}

func TestSimPeriodicMode(t *testing.T) {
	path := writePairJSON(t, 7, true)
	var out bytes.Buffer
	if err := run([]string{"-firings", "100", "-workload", "max", "-periodic", "-offset", "10", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "outcome: completed") {
		t.Errorf("periodic run failed:\n%s", out.String())
	}
	// Periodic mode without a constraint in the file is an error.
	noCon := writePairJSON(t, 7, false)
	if err := run([]string{"-periodic", noCon}, &out); err == nil {
		t.Error("periodic without constraint accepted")
	}
	// Malformed offset.
	if err := run([]string{"-periodic", "-offset", "x", path}, &out); err == nil {
		t.Error("bad offset accepted")
	}
}

func TestSimGantt(t *testing.T) {
	path := writePairJSON(t, 7, true)
	var out bytes.Buffer
	if err := run([]string{"-firings", "20", "-gantt", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "#") {
		t.Errorf("gantt marks missing:\n%s", out.String())
	}
}

func TestSimStopTaskOverride(t *testing.T) {
	path := writePairJSON(t, 7, true)
	var out bytes.Buffer
	if err := run([]string{"-firings", "10", "-task", "wa", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "average period of wa") {
		t.Errorf("stop task override ignored:\n%s", out.String())
	}
	if err := run([]string{"-task", "zz", path}, &out); err == nil {
		t.Error("unknown stop task accepted")
	}
}

func TestSimErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing file accepted")
	}
	// Unsized graph.
	unsized := writePairJSON(t, 0, true)
	if err := run([]string{unsized}, &out); err == nil {
		t.Error("unsized graph accepted")
	}
}

func TestSimCSVDir(t *testing.T) {
	path := writePairJSON(t, 7, true)
	dir := filepath.Join(t.TempDir(), "csv")
	var out bytes.Buffer
	if err := run([]string{"-firings", "30", "-csv-dir", dir, path}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("wrote %d files, want 2", len(entries))
	}
	if !strings.Contains(out.String(), "occupancy peak") {
		t.Errorf("occupancy summary missing:\n%s", out.String())
	}
}

func TestSimTextCameraDocument(t *testing.T) {
	// The camera testdata document has no capacities: vrdfsim must
	// reject it with a clear error.
	var out bytes.Buffer
	if err := run([]string{"../../testdata/camera.txt"}, &out); err == nil {
		t.Error("unsized text document accepted")
	}
}
