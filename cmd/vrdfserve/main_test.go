package main

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

const pairDoc = `task a wcrt 1
task b wcrt 1
buffer a -> b prod 3 cons {2,3}
constraint b period 3
`

// syncBuf is a goroutine-safe writer for run's output.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenLine = regexp.MustCompile(`listening on (http://[^\s]+)`)

// TestRunServesAndShutsDown boots the real binary path end to end: free
// port, one analysis request, graceful shutdown, cache flush, final stats.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cacheDir := t.TempDir()
	var out syncBuf
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-cache-dir", cacheDir, "-firings", "200"}, &out)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("run exited before listening: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listening line in %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/minimize", "application/json", strings.NewReader(pairDoc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("minimize: status %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	// The default -cache-store mem: serves the /v1/cache protocol.
	fp := strings.Repeat("ab", 32)
	req, err := http.NewRequest(http.MethodPut, base+"/v1/cache/"+fp, strings.NewReader(`{"advisory":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("cache PUT: status %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/cache/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache GET: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not shut down; output:\n%s", out.String())
	}

	text := out.String()
	if !strings.Contains(text, "served ") || !strings.Contains(text, "flushed to dir:"+cacheDir) {
		t.Fatalf("final stats missing from output:\n%s", text)
	}
	// The minimize verdicts must have landed on disk.
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("cache dir %s is empty after flush", cacheDir)
	}
}

func TestRunRejectsBadInvocation(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"positional"}, &out); err == nil {
		t.Error("positional argument accepted")
	}
	if err := run(context.Background(), []string{"-access-log", filepath.Join(t.TempDir(), "missing", "log")}, &out); err == nil {
		t.Error("unopenable access log accepted")
	}
	if err := run(context.Background(), []string{"-cache-backend", "bogus"}, &out); err == nil {
		t.Error("bad -cache-backend spec accepted")
	}
	if err := run(context.Background(), []string{"-cache-store", "http://elsewhere:8080"}, &out); err == nil {
		t.Error("remote -cache-store accepted (would proxy blindly)")
	}
}

// TestNewHTTPServerHardening pins the listener's protective limits: a
// regression that drops one silently reopens the slow-client /
// header-bloat exposure.
func TestNewHTTPServerHardening(t *testing.T) {
	hs := newHTTPServer(nil)
	if hs.ReadHeaderTimeout != 10*time.Second {
		t.Errorf("ReadHeaderTimeout = %v, want 10s", hs.ReadHeaderTimeout)
	}
	if hs.ReadTimeout != time.Minute {
		t.Errorf("ReadTimeout = %v, want 1m", hs.ReadTimeout)
	}
	if hs.IdleTimeout != 2*time.Minute {
		t.Errorf("IdleTimeout = %v, want 2m", hs.IdleTimeout)
	}
	if hs.MaxHeaderBytes != 1<<20 {
		t.Errorf("MaxHeaderBytes = %d, want 1 MiB", hs.MaxHeaderBytes)
	}
	if hs.WriteTimeout != 0 {
		t.Errorf("WriteTimeout = %v, want 0 (computations answer within the request budget)", hs.WriteTimeout)
	}
}
