package main

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

const pairDoc = `task a wcrt 1
task b wcrt 1
buffer a -> b prod 3 cons {2,3}
constraint b period 3
`

// syncBuf is a goroutine-safe writer for run's output.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenLine = regexp.MustCompile(`listening on (http://[^\s]+)`)

// TestRunServesAndShutsDown boots the real binary path end to end: free
// port, one analysis request, graceful shutdown, cache flush, final stats.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cacheDir := t.TempDir()
	var out syncBuf
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-cache-dir", cacheDir, "-firings", "200"}, &out)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("run exited before listening: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listening line in %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/minimize", "application/json", strings.NewReader(pairDoc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("minimize: status %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not shut down; output:\n%s", out.String())
	}

	text := out.String()
	if !strings.Contains(text, "served ") || !strings.Contains(text, "flushed to "+cacheDir) {
		t.Fatalf("final stats missing from output:\n%s", text)
	}
	// The minimize verdicts must have landed on disk.
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("cache dir %s is empty after flush", cacheDir)
	}
}

func TestRunRejectsBadInvocation(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"positional"}, &out); err == nil {
		t.Error("positional argument accepted")
	}
	if err := run(context.Background(), []string{"-access-log", filepath.Join(t.TempDir(), "missing", "log")}, &out); err == nil {
		t.Error("unopenable access log accepted")
	}
}
