// Command vrdfserve runs the capacity-analysis service (internal/serve)
// behind a hardened net/http server: POST graph documents to /v1/size,
// /v1/minimize, /v1/sweep, /v1/probe or /v1/degradation; probe /healthz
// and /statsz. With -sweep-workers the process acts as a sweep
// coordinator, sharding /v1/sweep grids across a fleet of workers'
// /v1/probe endpoints (see internal/dispatch).
// The -cache-store tier is additionally served under /v1/cache/, so a
// fleet of vrdfcap/vrdfserve replicas pointed at this process with
// -cache-backend=http://host:port pools one feasibility frontier.
//
// The process shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight requests get a drain window, the worker pool and
// access-log drain stop, and a disk-backed verdict cache is flushed so
// the next process (or a cmd/vrdfcap run pointed at the same -cache-dir)
// starts warm.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vrdfcap/internal/cachestore"
	"vrdfcap/internal/graphio"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/serve"
)

// Hardened listener defaults. The service computes for up to the request
// timeout before writing, so there is deliberately no WriteTimeout — the
// per-computation budget (-timeout) bounds that side. The read-side
// limits exist so an idle, trickling or header-bloating client cannot
// pin a connection goroutine forever.
const (
	readHeaderTimeout = 10 * time.Second
	readTimeout       = time.Minute
	idleTimeout       = 2 * time.Minute
	maxHeaderBytes    = 1 << 20
)

// splitList parses a comma-separated flag value, dropping whitespace and
// empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// newHTTPServer returns the hardened http.Server every vrdfserve
// listener uses; a test pins the configured values.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		IdleTimeout:       idleTimeout,
		MaxHeaderBytes:    maxHeaderBytes,
	}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vrdfserve:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until ctx cancels or the listener
// fails. Split from main for tests: out receives the "listening on" line
// and the final stats summary.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vrdfserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "analysis worker goroutines (0: GOMAXPROCS)")
	queue := fs.Int("queue", 64, "jobs waiting for a worker before requests are shed with 503")
	timeout := fs.Duration("timeout", 30*time.Second, "wall-clock budget per computation (negative: unlimited)")
	searchWorkers := fs.Int("search-workers", 1, "parallelism inside one search or sweep")
	sweepWorkers := fs.String("sweep-workers", "",
		"comma-separated vrdfserve base URLs to shard /v1/sweep requests across (coordinator mode; their /v1/probe batches always compute locally)")
	firings := fs.Int64("firings", 1000, "default simulation horizon for minimize and degradation")
	maxFirings := fs.Int64("max-firings", 200_000, "cap on the per-request firings override")
	maxEvents := fs.Int64("max-events", 0, "cap on simulated events per probe run (0: engine default)")
	checkpoints := fs.Int("checkpoints", 8, "warm-start checkpoints per probe machine (negative: disabled)")
	maxBytes := fs.Int("max-bytes", graphio.DefaultLimits.MaxBytes, "request-document byte limit")
	maxTasks := fs.Int("max-tasks", graphio.DefaultLimits.MaxTasks, "request-document task limit")
	maxBuffers := fs.Int("max-buffers", graphio.DefaultLimits.MaxBuffers, "request-document buffer limit")
	maxQuanta := fs.Int("max-quanta", graphio.DefaultLimits.MaxQuanta, "request-document quanta-set size limit")
	sweepPeriods := fs.Int("sweep-periods", 64, "cap on the periods of one sweep request")
	respCache := fs.Int("resp-cache", 1024, "rendered responses kept for exact-repeat requests")
	problemCache := fs.Int("problem-cache", 64, "compiled minimization problems kept warm")
	logBuffer := fs.Int("log-buffer", 1024, "access-log ring size in entries (drops, never blocks)")
	accessLog := fs.String("access-log", "", "access-log destination: a file path, \"-\" for stderr, empty for none")
	cacheDir := fs.String("cache-dir", "", "directory for the on-disk feasibility cache (default: in-memory)")
	cacheBackend := fs.String("cache-backend", "",
		"verdict-store backend for this replica's own analyses: dir:PATH, mem:, or http[s]://HOST (overrides -cache-dir)")
	cacheStore := fs.String("cache-store", "mem:",
		"backend SERVED to the fleet under /v1/cache/: dir:PATH or mem:; empty disables the endpoints")
	cacheEntries := fs.Int("cache-entries", 4096, "cap on distinct fingerprints the served /v1/cache store accepts")
	drain := fs.Duration("drain", 5*time.Second, "grace window for in-flight requests on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (vrdfserve takes only flags)", fs.Arg(0))
	}

	var logW io.Writer
	switch *accessLog {
	case "":
	case "-":
		logW = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open access log: %w", err)
		}
		defer f.Close()
		logW = f
	}

	store := probecache.Shared()
	switch {
	case *cacheBackend != "":
		b, err := cachestore.Parse(*cacheBackend)
		if err != nil {
			return err
		}
		// Same resilience posture as the CLIs: a misbehaving backend
		// demotes to the in-memory tier, never stalls a request.
		store = probecache.NewStoreBackend(cachestore.NewResilient(b, cachestore.NewMem(), cachestore.Options{
			Seed: uint64(os.Getpid()),
		}))
	case *cacheDir != "":
		store = probecache.NewStore(*cacheDir)
	}

	var cacheTier cachestore.Backend
	if *cacheStore != "" {
		b, err := cachestore.Parse(*cacheStore)
		if err != nil {
			return fmt.Errorf("bad -cache-store: %w", err)
		}
		if _, ok := b.(*cachestore.HTTP); ok {
			// Serving a remote store through this process would make it a
			// blind proxy (and a loop hazard when pointed at itself).
			return fmt.Errorf("bad -cache-store %q: serve a local tier (dir:PATH or mem:), not a remote one", *cacheStore)
		}
		cacheTier = b
	}

	s := serve.New(serve.Config{
		Limits: graphio.Limits{
			MaxBytes: *maxBytes, MaxTasks: *maxTasks,
			MaxBuffers: *maxBuffers, MaxQuanta: *maxQuanta,
		},
		Workers:           *workers,
		Queue:             *queue,
		RequestTimeout:    *timeout,
		SearchWorkers:     *searchWorkers,
		SweepWorkers:      splitList(*sweepWorkers),
		Firings:           *firings,
		MaxFirings:        *maxFirings,
		MaxEvents:         *maxEvents,
		Checkpoints:       *checkpoints,
		MaxSweepPeriods:   *sweepPeriods,
		ResponseCacheSize: *respCache,
		ProblemCacheSize:  *problemCache,
		LogBuffer:         *logBuffer,
		AccessLog:         logW,
		Store:             store,
		CacheBackend:      cacheTier,
		MaxCacheEntries:   *cacheEntries,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "vrdfserve listening on http://%s\n", ln.Addr())

	hs := newHTTPServer(s)
	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()

	select {
	case err := <-served:
		s.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful stop: listener first, in-flight requests within the drain
	// window, then the analysis pool and log drain.
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutErr := hs.Shutdown(shutCtx)
	s.Close()
	if err := <-served; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}

	st := s.StatsSnapshot()
	written, flushErr := store.Flush()
	fmt.Fprintf(out, "served %d requests: %d cache hits, %d coalesced, %d computed, %d shed, %d errors, %d log drops\n",
		st.Requests, st.CacheHits, st.Coalesced, st.Computes, st.Rejected, st.Errors, st.LogDropped)
	if desc := store.Describe(); desc != "" {
		fmt.Fprintf(out, "cache: %d verdict payload(s) flushed to %s\n", written, desc)
	}
	if st.StoreDemotions > 0 || st.StoreBreakerOpen {
		fmt.Fprintf(out, "cache resilience: %d retries, %d demotions, breaker open=%v\n",
			st.StoreRetries, st.StoreDemotions, st.StoreBreakerOpen)
	}
	if flushErr != nil {
		return fmt.Errorf("flush cache: %w", flushErr)
	}
	return shutErr
}
