// Command benchdiff gates benchmark regressions in CI. It parses standard
// `go test -bench` output (a file argument or stdin, typically several
// concatenated runs with -count=N) and compares every benchmark that also
// appears in the checked-in baseline (BENCH_sim.json):
//
//   - allocs/op may not regress by more than -alloc-tolerance percent
//     (default 10) over the baseline's allocs_per_op; a baseline of exactly
//     0 is a zero-tolerance gate — the first heap allocation on an
//     annotated zero-alloc path fails CI, whatever the tolerance;
//   - probes_sim may not increase at all — a probe answered by the
//     feasibility cache that starts simulating again is a correctness-class
//     regression of the caching layer, not noise;
//   - events_per_probe may not increase at all — the simulated events a
//     probe costs are deterministic for a fixed seed, so any growth means
//     warm starts stopped resuming or the bound pruning stopped deciding,
//     a regression of the warm-start layer rather than noise.
//
// Both metrics are hardware-independent, so the gate is meaningful on any
// CI runner; ns/op and B/op are reported but never gated. The best (minimum)
// sample of each benchmark is compared, which makes -count=N runs robust to
// scheduling noise. A baseline benchmark missing from the input fails the
// gate: the bench set and the baseline must stay in sync.
//
// Usage:
//
//	go test -run='^$' -bench=... -benchmem -count=5 ./... | benchdiff -baseline BENCH_sim.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// sample is the best observed values of one benchmark across all parsed
// runs. Absent metrics are negative.
type sample struct {
	nsPerOp        float64
	allocsOp       int64
	probesSim      float64
	eventsPerProbe float64
	seen           int
}

// baselineEntry is the subset of a BENCH_sim.json benchmark record the gate
// reads. Absent fields decode to nil and are not gated; a present
// allocs_per_op of 0 gates at exactly zero.
type baselineEntry struct {
	AllocsPerOp    *int64   `json:"allocs_per_op"`
	ProbesSim      *float64 `json:"probes_sim"`
	EventsPerProbe *float64 `json:"events_per_probe"`
}

type baselineFile struct {
	Benchmarks map[string]baselineEntry `json:"benchmarks"`
}

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(out)
	baselinePath := fs.String("baseline", "", "baseline JSON file (required)")
	tolerance := fs.Float64("alloc-tolerance", 10, "allowed allocs/op regression in percent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baselinePath == "" {
		return fmt.Errorf("-baseline is required")
	}
	if *tolerance < 0 {
		return fmt.Errorf("-alloc-tolerance must be non-negative, got %v", *tolerance)
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %w", *baselinePath, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("%s holds no benchmarks", *baselinePath)
	}

	input := stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		input = f
	default:
		return fmt.Errorf("expected at most one results file, got %d arguments", fs.NArg())
	}
	samples, err := parseBench(input)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	for _, name := range names {
		b := base.Benchmarks[name]
		s, ok := samples[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not in results (bench set out of sync)", name))
			continue
		}
		status := "ok"
		if b.AllocsPerOp != nil && s.allocsOp >= 0 {
			// A zero baseline means a zero limit: the tolerance is
			// multiplicative, so an annotated zero-alloc path fails on its
			// first allocation.
			limit := float64(*b.AllocsPerOp) * (1 + *tolerance/100)
			if float64(s.allocsOp) > limit {
				status = "FAIL"
				if *b.AllocsPerOp == 0 {
					failures = append(failures, fmt.Sprintf("%s: allocs/op %d but the baseline requires zero (zero-tolerance gate)",
						name, s.allocsOp))
				} else {
					failures = append(failures, fmt.Sprintf("%s: allocs/op %d exceeds baseline %d by more than %g%%",
						name, s.allocsOp, *b.AllocsPerOp, *tolerance))
				}
			}
		}
		if b.ProbesSim != nil && s.probesSim >= 0 && s.probesSim > *b.ProbesSim {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: probes_sim %g exceeds baseline %g (any increase fails)",
				name, s.probesSim, *b.ProbesSim))
		}
		if b.EventsPerProbe != nil && s.eventsPerProbe >= 0 && s.eventsPerProbe > *b.EventsPerProbe {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: events_per_probe %g exceeds baseline %g (any increase fails)",
				name, s.eventsPerProbe, *b.EventsPerProbe))
		}
		baseAllocs := "-"
		if b.AllocsPerOp != nil {
			baseAllocs = strconv.FormatInt(*b.AllocsPerOp, 10)
		}
		fmt.Fprintf(out, "%-40s %s  allocs/op %d (baseline %s)", name, status, s.allocsOp, baseAllocs)
		if b.ProbesSim != nil {
			fmt.Fprintf(out, "  probes_sim %g (baseline %g)", s.probesSim, *b.ProbesSim)
		}
		if b.EventsPerProbe != nil {
			fmt.Fprintf(out, "  events_per_probe %g (baseline %g)", s.eventsPerProbe, *b.EventsPerProbe)
		}
		fmt.Fprintf(out, "  [%d sample(s), best ns/op %.0f]\n", s.seen, s.nsPerOp)
	}
	for name := range samples {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Fprintf(out, "%-40s new  (not in baseline, not gated)\n", name)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(out, "all %d gated benchmarks within tolerance\n", len(names))
	return nil
}

// benchLine matches one result line of `go test -bench` output:
// name, iteration count, then metric/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// gomaxprocsSuffix is the -N procs suffix go test appends to benchmark
// names; stripped so baselines are portable across CPU counts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench folds all result lines into per-benchmark best samples.
func parseBench(r io.Reader) (map[string]*sample, error) {
	out := make(map[string]*sample)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("odd metric/unit pairs in line: %s", sc.Text())
		}
		s, ok := out[name]
		if !ok {
			s = &sample{nsPerOp: -1, allocsOp: -1, probesSim: -1, eventsPerProbe: -1}
			out[name] = s
		}
		s.seen++
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value %q in line: %s", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				if s.nsPerOp < 0 || v < s.nsPerOp {
					s.nsPerOp = v
				}
			case "allocs/op":
				if iv := int64(v); s.allocsOp < 0 || iv < s.allocsOp {
					s.allocsOp = iv
				}
			case "probes_sim":
				if s.probesSim < 0 || v < s.probesSim {
					s.probesSim = v
				}
			case "events_per_probe":
				if s.eventsPerProbe < 0 || v < s.eventsPerProbe {
					s.eventsPerProbe = v
				}
			}
		}
	}
	return out, sc.Err()
}
