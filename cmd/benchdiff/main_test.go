package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testBaseline = `{
  "benchmarks": {
    "BenchmarkSweepPeriods": {"ns_per_op": 3300000, "bytes_per_op": 90000, "allocs_per_op": 1000, "probes_sim": 12},
    "BenchmarkReusedMachineRun": {"ns_per_op": 50000, "bytes_per_op": 48, "allocs_per_op": 1}
  }
}`

const eventsBaseline = `{
  "benchmarks": {
    "BenchmarkMinimize": {"allocs_per_op": 1000, "probes_sim": 27, "events_per_probe": 6646}
  }
}`

func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func runDiff(t *testing.T, baseline, input string, extra ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	args := append([]string{"-baseline", baseline}, extra...)
	err := run(args, strings.NewReader(input), &out)
	return out.String(), err
}

func TestPassWithinTolerance(t *testing.T) {
	base := writeBaseline(t, testBaseline)
	// -count=3 samples with noise; the best sample of each is within bounds.
	// The GOMAXPROCS suffix must be stripped to match the baseline.
	input := `
goos: linux
BenchmarkSweepPeriods-8   	     100	   3400000 ns/op	   95000 B/op	    1080 allocs/op	        12.00 probes_sim
BenchmarkSweepPeriods-8   	     100	   3350000 ns/op	   95000 B/op	    1005 allocs/op	        12.00 probes_sim
BenchmarkSweepPeriods-8   	     100	   3600000 ns/op	   95000 B/op	    1200 allocs/op	        12.00 probes_sim
PASS
BenchmarkReusedMachineRun-8   	   20000	     52000 ns/op	      48 B/op	       1 allocs/op
PASS
`
	out, err := runDiff(t, base, input)
	if err != nil {
		t.Fatalf("expected pass, got %v\n%s", err, out)
	}
	if !strings.Contains(out, "all 2 gated benchmarks within tolerance") {
		t.Errorf("missing summary line:\n%s", out)
	}
}

func TestAllocRegressionFails(t *testing.T) {
	base := writeBaseline(t, testBaseline)
	// Best sample is 1150 allocs/op: 15% over the 1000 baseline.
	input := `
BenchmarkSweepPeriods-8   	100	3400000 ns/op	95000 B/op	1150 allocs/op	12.00 probes_sim
BenchmarkSweepPeriods-8   	100	3400000 ns/op	95000 B/op	1180 allocs/op	12.00 probes_sim
BenchmarkReusedMachineRun-8   	20000	52000 ns/op	48 B/op	1 allocs/op
`
	out, err := runDiff(t, base, input)
	if err == nil || !strings.Contains(err.Error(), "allocs/op 1150 exceeds baseline 1000") {
		t.Fatalf("expected alloc regression failure, got %v\n%s", err, out)
	}
	// A wider tolerance admits the same input.
	if out, err := runDiff(t, base, input, "-alloc-tolerance", "20"); err != nil {
		t.Fatalf("20%% tolerance should pass: %v\n%s", err, out)
	}
}

func TestZeroAllocBaselineIsZeroTolerance(t *testing.T) {
	base := writeBaseline(t, `{"benchmarks": {"BenchmarkServeCacheHit": {"ns_per_op": 383, "allocs_per_op": 0}}}`)
	// A single allocation fails, whatever the percentage tolerance: 0 times
	// any multiplier is still 0.
	input := "BenchmarkServeCacheHit-8   \t3000000\t390 ns/op\t16 B/op\t1 allocs/op\n"
	_, err := runDiff(t, base, input, "-alloc-tolerance", "1000")
	if err == nil || !strings.Contains(err.Error(), "baseline requires zero") {
		t.Fatalf("expected zero-tolerance failure, got %v", err)
	}
	input = "BenchmarkServeCacheHit-8   \t3000000\t390 ns/op\t0 B/op\t0 allocs/op\n"
	if out, err := runDiff(t, base, input); err != nil {
		t.Fatalf("zero allocs against a zero baseline must pass: %v\n%s", err, out)
	}
}

func TestAbsentAllocBaselineNotGated(t *testing.T) {
	// No allocs_per_op field at all: the benchmark is tracked for probes
	// only, so allocations do not gate.
	base := writeBaseline(t, `{"benchmarks": {"BenchmarkX": {"probes_sim": 12}}}`)
	input := "BenchmarkX-8   \t100\t100 ns/op\t999999 B/op\t99999 allocs/op\t12.00 probes_sim\n"
	if out, err := runDiff(t, base, input); err != nil {
		t.Fatalf("absent allocs_per_op must not gate: %v\n%s", err, out)
	}
}

func TestAnyProbeIncreaseFails(t *testing.T) {
	base := writeBaseline(t, testBaseline)
	// Allocs fine, but one extra simulated probe — even under 10% — fails.
	input := `
BenchmarkSweepPeriods-8   	100	3400000 ns/op	95000 B/op	1000 allocs/op	13.00 probes_sim
BenchmarkReusedMachineRun-8   	20000	52000 ns/op	48 B/op	1 allocs/op
`
	_, err := runDiff(t, base, input)
	if err == nil || !strings.Contains(err.Error(), "probes_sim 13 exceeds baseline 12") {
		t.Fatalf("expected probes_sim failure, got %v", err)
	}
}

func TestAnyEventsPerProbeIncreaseFails(t *testing.T) {
	base := writeBaseline(t, eventsBaseline)
	// Probes fine, but each simulated probe got costlier: a warm-start or
	// bound-pruning regression, gated with zero tolerance.
	input := `
BenchmarkMinimize-8   	1	9000000 ns/op	900000 B/op	1000 allocs/op	27.00 probes_sim	6950.00 events_per_probe
`
	_, err := runDiff(t, base, input)
	if err == nil || !strings.Contains(err.Error(), "events_per_probe 6950 exceeds baseline 6646") {
		t.Fatalf("expected events_per_probe failure, got %v", err)
	}
	// The best sample across noisy -count runs is what gates: one sample at
	// the baseline passes even next to a worse one.
	input = `
BenchmarkMinimize-8   	1	9000000 ns/op	900000 B/op	1000 allocs/op	27.00 probes_sim	6950.00 events_per_probe
BenchmarkMinimize-8   	1	9000000 ns/op	900000 B/op	1000 allocs/op	27.00 probes_sim	6646.00 events_per_probe
`
	if out, err := runDiff(t, base, input); err != nil {
		t.Fatalf("baseline-equal best sample must pass: %v\n%s", err, out)
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	base := writeBaseline(t, testBaseline)
	input := `BenchmarkSweepPeriods-8   	100	3400000 ns/op	95000 B/op	1000 allocs/op	12.00 probes_sim`
	_, err := runDiff(t, base, input)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkReusedMachineRun: in baseline but not in results") {
		t.Fatalf("expected out-of-sync failure, got %v", err)
	}
}

func TestNewBenchmarkReportedNotGated(t *testing.T) {
	base := writeBaseline(t, testBaseline)
	input := `
BenchmarkSweepPeriods-8   	100	3400000 ns/op	95000 B/op	1000 allocs/op	12.00 probes_sim
BenchmarkReusedMachineRun-8   	20000	52000 ns/op	48 B/op	1 allocs/op
BenchmarkBrandNew-8   	100	1 ns/op	99999999 B/op	99999 allocs/op
`
	out, err := runDiff(t, base, input)
	if err != nil {
		t.Fatalf("new benchmark must not gate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "BenchmarkBrandNew") || !strings.Contains(out, "not gated") {
		t.Errorf("new benchmark not reported:\n%s", out)
	}
}

func TestMalformedInputs(t *testing.T) {
	base := writeBaseline(t, testBaseline)
	if _, err := runDiff(t, base, "no bench lines here\nPASS\n"); err == nil ||
		!strings.Contains(err.Error(), "no benchmark results") {
		t.Fatalf("empty input accepted: %v", err)
	}
	if _, err := runDiff(t, base, "BenchmarkX-8 100 12 ns/op trailing"); err == nil ||
		!strings.Contains(err.Error(), "odd metric/unit pairs") {
		t.Fatalf("odd field count accepted: %v", err)
	}
	if _, err := runDiff(t, base, "BenchmarkX-8 100 twelve ns/op"); err == nil ||
		!strings.Contains(err.Error(), "bad metric value") {
		t.Fatalf("non-numeric metric accepted: %v", err)
	}
	badBase := writeBaseline(t, `{"benchmarks": {}}`)
	if _, err := runDiff(t, badBase, "BenchmarkX-8 100 12 ns/op"); err == nil ||
		!strings.Contains(err.Error(), "holds no benchmarks") {
		t.Fatalf("empty baseline accepted: %v", err)
	}
	if err := run([]string{}, strings.NewReader(""), &strings.Builder{}); err == nil ||
		!strings.Contains(err.Error(), "-baseline is required") {
		t.Fatalf("missing -baseline accepted: %v", err)
	}
}

func TestResultsFileArgument(t *testing.T) {
	base := writeBaseline(t, testBaseline)
	results := filepath.Join(t.TempDir(), "bench.txt")
	content := `
BenchmarkSweepPeriods-8   	100	3400000 ns/op	95000 B/op	1000 allocs/op	12.00 probes_sim
BenchmarkReusedMachineRun-8   	20000	52000 ns/op	48 B/op	1 allocs/op
`
	if err := os.WriteFile(results, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-baseline", base, results}, strings.NewReader("ignored"), &out); err != nil {
		t.Fatalf("file argument failed: %v\n%s", err, out.String())
	}
}
