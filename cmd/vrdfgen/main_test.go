package main

import (
	"bytes"
	"testing"

	"vrdfcap"
	"vrdfcap/internal/capacity"
)

func TestGenerateRoundTrips(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seed", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	g, c, err := vrdfcap.DecodeJSON(out.Bytes())
	if err != nil {
		t.Fatalf("generated document does not parse: %v", err)
	}
	if c == nil {
		t.Fatal("generated document lacks a constraint")
	}
	res, err := vrdfcap.Analyze(g, *c, vrdfcap.PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Errorf("generated chain infeasible: %v", res.Diagnostics)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-seed", "4"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-seed", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different documents")
	}
}

func TestGenerateSourceConstrained(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seed", "3", "-source"}, &out); err != nil {
		t.Fatal(err)
	}
	g, c, err := vrdfcap.DecodeJSON(out.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	src, err := g.Source()
	if err != nil {
		t.Fatal(err)
	}
	if c.Task != src.Name {
		t.Errorf("constraint on %s, want source %s", c.Task, src.Name)
	}
}

func TestGenerateInfeasible(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seed", "5", "-infeasible"}, &out); err != nil {
		t.Fatal(err)
	}
	g, c, err := vrdfcap.DecodeJSON(out.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	res, err := capacity.Compute(g, *c, capacity.PolicyEquation4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Error("infeasible generation passed the analysis")
	}
}

func TestGenerateErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"extra"}, &out); err == nil {
		t.Error("positional argument accepted")
	}
	if err := run([]string{"-min-tasks", "1"}, &out); err == nil {
		t.Error("invalid config accepted")
	}
}
