// Command vrdfgen emits a random — but feasible by construction — chain
// task graph with its throughput constraint as JSON, for exercising the
// vrdfcap and vrdfsim tools or building test corpora.
//
// Usage:
//
//	vrdfgen -seed 7 > chain.json
//	vrdfcap -verify chain.json
//
// Flags:
//
//	-seed n        generation seed (default 1)
//	-min-tasks n   minimum chain length (default 2)
//	-max-tasks n   maximum chain length (default 5)
//	-max-quantum n largest transfer quantum (default 8)
//	-set-size n    largest quanta-set cardinality (default 3)
//	-source        constrain the source instead of the sink
//	-zero          allow zero-consumption phases (sink-constrained only)
//	-infeasible    make one task too slow, for negative testing
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vrdfcap"
	"vrdfcap/internal/graphgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vrdfgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vrdfgen", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "generation seed")
	minTasks := fs.Int("min-tasks", 2, "minimum chain length")
	maxTasks := fs.Int("max-tasks", 5, "maximum chain length")
	maxQ := fs.Int64("max-quantum", 8, "largest transfer quantum")
	setSize := fs.Int("set-size", 3, "largest quanta-set cardinality")
	source := fs.Bool("source", false, "constrain the source instead of the sink")
	zero := fs.Bool("zero", false, "allow zero-consumption phases")
	infeasible := fs.Bool("infeasible", false, "make one task too slow")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	cfg := graphgen.Config{
		Seed:              *seed,
		MinTasks:          *minTasks,
		MaxTasks:          *maxTasks,
		MaxQuantum:        *maxQ,
		MaxSetSize:        *setSize,
		SourceConstrained: *source,
		ZeroConsumption:   *zero,
		Infeasible:        *infeasible,
	}
	g, c, err := graphgen.Random(cfg)
	if err != nil {
		return err
	}
	data, err := vrdfcap.EncodeJSON(g, &c)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%s\n", data)
	return err
}
