package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"vrdfcap/internal/probecache"
	"vrdfcap/internal/serve"
)

// TestSoakAgainstInProcessServer drives a short soak at a real serve.Server
// and checks the report plus the success gate.
func TestSoakAgainstInProcessServer(t *testing.T) {
	s := serve.New(serve.Config{Store: probecache.NewStore(""), Firings: 200})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s)
	defer ts.Close()

	var out bytes.Buffer
	err := run([]string{
		"-addr", ts.URL,
		"-duration", "300ms",
		"-concurrency", "4",
		"-problems", "2",
		"-variants", "4",
		"-min-rps", "1",
	}, &out)
	if err != nil {
		t.Fatalf("soak failed: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"req/s", "0 errors", "p50=", "p99=", "sim_events+"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
	// The mix must actually exercise the warm path: more requests than
	// computed problems.
	if st := s.StatsSnapshot(); st.CacheHits == 0 || st.Computes == 0 {
		t.Errorf("soak mix never hit both paths: %+v", st)
	}
}

func TestSoakGates(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -addr accepted")
	}
	// An unreachable server must fail the run, not report success.
	err := run([]string{"-addr", "http://127.0.0.1:1", "-duration", "50ms", "-concurrency", "1"}, &out)
	if err == nil {
		t.Error("soak against an unreachable server succeeded")
	}
}
