// Command soak load-tests a running vrdfserve: a fixed worker count fires
// a mixed request stream — exact repeats (response-cache hits), textual
// variants of the same problem (coalescing and warm-frontier replays) and
// distinct seeds (cold computations) — for a fixed duration, then reports
// throughput, latency percentiles and the server-side effort deltas read
// from /statsz.
//
// The exit status is the gate: non-zero when any request failed or the
// measured request rate fell below -min-rps, so CI can run a short soak
// as a smoke test.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vrdfcap/internal/serve"
)

// pairDoc is the default workload: the paper's Figure 1 producer-consumer
// pair, small enough that a cold minimize is a handful of simulations.
const pairDoc = `task a wcrt 1
task b wcrt 1
buffer a -> b prod 3 cons {2,3}
constraint b period 3
`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	addr := fs.String("addr", "", "base URL of the vrdfserve under test (e.g. http://127.0.0.1:8080)")
	duration := fs.Duration("duration", 5*time.Second, "how long to drive load")
	concurrency := fs.Int("concurrency", 8, "concurrent request workers")
	firings := fs.Int64("firings", 200, "simulation horizon per minimize request")
	problems := fs.Int("problems", 4, "distinct problems (seeds) in the mix")
	variants := fs.Int("variants", 8, "textual variants per problem (same canonical graph)")
	minRPS := fs.Float64("min-rps", 0, "fail when the measured request rate falls below this floor")
	graphPath := fs.String("graph", "", "graph document to load-test with (default: built-in Figure 1 pair)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	if *concurrency <= 0 || *problems <= 0 || *variants <= 0 {
		return fmt.Errorf("concurrency, problems and variants must be positive")
	}
	doc := pairDoc
	if *graphPath != "" {
		data, err := os.ReadFile(*graphPath)
		if err != nil {
			return err
		}
		doc = string(data)
	}
	base := strings.TrimRight(*addr, "/")

	// Pre-render every body and URL so the measurement loop does no
	// formatting: requests[i] cycles problems fastest, variants slower, so
	// the stream interleaves distinct problems while exact repeats recur
	// once the cycle wraps.
	type request struct{ url, body string }
	reqs := make([]request, 0, *problems**variants)
	for v := 0; v < *variants; v++ {
		for p := 0; p < *problems; p++ {
			reqs = append(reqs, request{
				url:  fmt.Sprintf("%s/v1/minimize?firings=%d&seed=%d", base, *firings, p+1),
				body: fmt.Sprintf("# soak variant %d\n%s", v, doc),
			})
		}
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *concurrency,
		MaxIdleConnsPerHost: *concurrency,
	}}

	before, statsOK := readStats(client, base)

	deadline := time.Now().Add(*duration)
	var next atomic.Int64
	var failures atomic.Int64
	lats := make([][]int64, *concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]int64, 0, 4096)
			for time.Now().Before(deadline) {
				r := reqs[int(next.Add(1))%len(reqs)]
				t0 := time.Now()
				resp, err := client.Post(r.url, "application/json", strings.NewReader(r.body))
				if err != nil {
					failures.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				mine = append(mine, int64(time.Since(t0)))
			}
			lats[w] = mine
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := int64(len(all)) + failures.Load()
	rps := float64(total) / elapsed.Seconds()

	fmt.Fprintf(out, "soak: %d requests in %.1fs (%.1f req/s), %d errors\n",
		total, elapsed.Seconds(), rps, failures.Load())
	if len(all) > 0 {
		fmt.Fprintf(out, "latency: p50=%s p99=%s max=%s\n",
			time.Duration(percentile(all, 0.50)),
			time.Duration(percentile(all, 0.99)),
			time.Duration(all[len(all)-1]))
	}
	if after, ok := readStats(client, base); ok && statsOK {
		events := after.SimEvents - before.SimEvents
		fmt.Fprintf(out, "server: hits+%d coalesced+%d computes+%d shed+%d sim_events+%d (%.0f events/s) log_drops=%d\n",
			after.CacheHits-before.CacheHits,
			after.Coalesced-before.Coalesced,
			after.Computes-before.Computes,
			after.Rejected-before.Rejected,
			events, float64(events)/elapsed.Seconds(),
			after.LogDropped)
	}

	if n := failures.Load(); n > 0 {
		return fmt.Errorf("%d of %d requests failed", n, total)
	}
	if *minRPS > 0 && rps < *minRPS {
		return fmt.Errorf("measured %.1f req/s, below the -min-rps floor of %.1f", rps, *minRPS)
	}
	return nil
}

// percentile returns the q-quantile of a sorted latency slice.
func percentile(sorted []int64, q float64) int64 {
	i := int(float64(len(sorted)-1) * q)
	return sorted[i]
}

// readStats snapshots /statsz; a false ok means the endpoint is absent or
// unreadable (soak still measures client-side numbers).
func readStats(client *http.Client, base string) (serve.Stats, bool) {
	var st serve.Stats
	resp, err := client.Get(base + "/statsz")
	if err != nil {
		return st, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, false
	}
	return st, true
}
