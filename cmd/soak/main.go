// Command soak load-tests a running vrdfserve: a fixed worker count fires
// a mixed request stream — exact repeats (response-cache hits), textual
// variants of the same problem (coalescing and warm-frontier replays) and
// distinct seeds (cold computations) — for a fixed duration, then reports
// throughput, latency percentiles and the server-side effort deltas read
// from /statsz.
//
// The exit status is the gate: non-zero when any request failed or the
// measured request rate fell below -min-rps, so CI can run a short soak
// as a smoke test.
//
// With -workers host1,host2 the harness switches to distributed-sweep
// mode: each "request" is one coordinator-driven period sweep sharded
// across the listed vrdfserve workers (internal/dispatch), and every
// folded result is compared point-for-point against a single-machine
// baseline computed up front — a mismatch counts as a failure, so the
// soak doubles as a byte-identity check under real network load.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vrdfcap"
	"vrdfcap/internal/capacity"
	"vrdfcap/internal/dispatch"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/serve"
)

// pairDoc is the default workload: the paper's Figure 1 producer-consumer
// pair, small enough that a cold minimize is a handful of simulations.
const pairDoc = `task a wcrt 1
task b wcrt 1
buffer a -> b prod 3 cons {2,3}
constraint b period 3
`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	addr := fs.String("addr", "", "base URL of the vrdfserve under test (e.g. http://127.0.0.1:8080)")
	duration := fs.Duration("duration", 5*time.Second, "how long to drive load")
	concurrency := fs.Int("concurrency", 8, "concurrent request workers")
	firings := fs.Int64("firings", 200, "simulation horizon per minimize request")
	problems := fs.Int("problems", 4, "distinct problems (seeds) in the mix")
	variants := fs.Int("variants", 8, "textual variants per problem (same canonical graph)")
	minRPS := fs.Float64("min-rps", 0, "fail when the measured request rate falls below this floor")
	graphPath := fs.String("graph", "", "graph document to load-test with (default: built-in Figure 1 pair)")
	workersStr := fs.String("workers", "", "comma-separated vrdfserve base URLs: drive coordinator-distributed period sweeps instead of minimize traffic")
	sweepPeriods := fs.Int("sweep-grid", 24, "periods per distributed sweep in -workers mode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	workers := splitList(*workersStr)
	if *addr == "" && len(workers) == 0 {
		return fmt.Errorf("-addr is required (or -workers for distributed-sweep mode)")
	}
	if *concurrency <= 0 || *problems <= 0 || *variants <= 0 {
		return fmt.Errorf("concurrency, problems and variants must be positive")
	}
	doc := pairDoc
	if *graphPath != "" {
		data, err := os.ReadFile(*graphPath)
		if err != nil {
			return err
		}
		doc = string(data)
	}
	if len(workers) > 0 {
		return runDistributed(out, doc, workers, *sweepPeriods, *duration, *concurrency, *minRPS)
	}
	base := strings.TrimRight(*addr, "/")

	// Pre-render every body and URL so the measurement loop does no
	// formatting: requests[i] cycles problems fastest, variants slower, so
	// the stream interleaves distinct problems while exact repeats recur
	// once the cycle wraps.
	type request struct{ url, body string }
	reqs := make([]request, 0, *problems**variants)
	for v := 0; v < *variants; v++ {
		for p := 0; p < *problems; p++ {
			reqs = append(reqs, request{
				url:  fmt.Sprintf("%s/v1/minimize?firings=%d&seed=%d", base, *firings, p+1),
				body: fmt.Sprintf("# soak variant %d\n%s", v, doc),
			})
		}
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *concurrency,
		MaxIdleConnsPerHost: *concurrency,
	}}

	before, statsOK := readStats(client, base)

	deadline := time.Now().Add(*duration)
	var next atomic.Int64
	var failures atomic.Int64
	lats := make([][]int64, *concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]int64, 0, 4096)
			for time.Now().Before(deadline) {
				r := reqs[int(next.Add(1))%len(reqs)]
				t0 := time.Now()
				resp, err := client.Post(r.url, "application/json", strings.NewReader(r.body))
				if err != nil {
					failures.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				mine = append(mine, int64(time.Since(t0)))
			}
			lats[w] = mine
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := int64(len(all)) + failures.Load()
	rps := float64(total) / elapsed.Seconds()

	fmt.Fprintf(out, "soak: %d requests in %.1fs (%.1f req/s), %d errors\n",
		total, elapsed.Seconds(), rps, failures.Load())
	if len(all) > 0 {
		fmt.Fprintf(out, "latency: p50=%s p99=%s max=%s\n",
			time.Duration(percentile(all, 0.50)),
			time.Duration(percentile(all, 0.99)),
			time.Duration(all[len(all)-1]))
	}
	if after, ok := readStats(client, base); ok && statsOK {
		events := after.SimEvents - before.SimEvents
		fmt.Fprintf(out, "server: hits+%d coalesced+%d computes+%d shed+%d sim_events+%d (%.0f events/s) log_drops=%d\n",
			after.CacheHits-before.CacheHits,
			after.Coalesced-before.Coalesced,
			after.Computes-before.Computes,
			after.Rejected-before.Rejected,
			events, float64(events)/elapsed.Seconds(),
			after.LogDropped)
	}

	if n := failures.Load(); n > 0 {
		return fmt.Errorf("%d of %d requests failed", n, total)
	}
	if *minRPS > 0 && rps < *minRPS {
		return fmt.Errorf("measured %.1f req/s, below the -min-rps floor of %.1f", rps, *minRPS)
	}
	return nil
}

// runDistributed is the -workers mode: concurrent coordinator-driven
// sweeps over a grid of periods around the document's constraint, each
// compared point-for-point against the single-machine baseline. The
// workers' /statsz (read from the first worker) frames the server-side
// effort; the dispatch counters frame the coordinator-side effort.
func runDistributed(out io.Writer, doc string, workers []string, gridN int, duration time.Duration, concurrency int, minRPS float64) error {
	if gridN <= 0 {
		return fmt.Errorf("sweep-grid must be positive")
	}
	g, c, err := vrdfcap.DecodeGraph([]byte(doc))
	if err != nil {
		return err
	}
	if c == nil {
		return fmt.Errorf("graph document has no throughput constraint")
	}
	// Periods from ~1/2× to ~3/2× the constrained period: the grid is
	// meant to straddle the feasibility frontier so sweeps mix valid and
	// infeasible verdicts.
	periods := make([]ratio.Rat, 0, gridN)
	for i := 0; i < gridN; i++ {
		periods = append(periods, c.Period.Mul(ratio.MustNew(int64(gridN+2*i), int64(2*gridN))))
	}
	policy := capacity.PolicyEquation4
	baseline, err := capacity.SweepPeriodsOpt(g, c.Task, periods, policy, capacity.SweepOptions{
		Parallel: 1, NoCache: true,
	})
	if err != nil {
		return fmt.Errorf("baseline sweep: %w", err)
	}

	client := &http.Client{}
	before, statsOK := readStats(client, strings.TrimRight(workers[0], "/"))

	dstats := &dispatch.Stats{}
	deadline := time.Now().Add(duration)
	var failures atomic.Int64
	lats := make([][]int64, concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]int64, 0, 1024)
			for time.Now().Before(deadline) {
				t0 := time.Now()
				pts, err := capacity.SweepPeriodsOpt(g, c.Task, periods, policy, capacity.SweepOptions{
					Workers:       workers,
					DispatchStats: dstats,
					NoCache:       true, // every sweep does full work
				})
				if err != nil {
					failures.Add(1)
					continue
				}
				if err := sweepMismatch(baseline, pts); err != nil {
					fmt.Fprintf(out, "soak: distributed sweep diverged: %v\n", err)
					failures.Add(1)
					continue
				}
				mine = append(mine, int64(time.Since(t0)))
			}
			lats[w] = mine
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := int64(len(all)) + failures.Load()
	rps := float64(total) / elapsed.Seconds()

	fmt.Fprintf(out, "soak: %d distributed sweeps (%d periods each) in %.1fs (%.1f sweeps/s), %d failures\n",
		total, gridN, elapsed.Seconds(), rps, failures.Load())
	if len(all) > 0 {
		fmt.Fprintf(out, "latency: p50=%s p99=%s max=%s\n",
			time.Duration(percentile(all, 0.50)),
			time.Duration(percentile(all, 0.99)),
			time.Duration(all[len(all)-1]))
	}
	fmt.Fprintf(out, "%s\n", dstats.Snapshot())
	if after, ok := readStats(client, strings.TrimRight(workers[0], "/")); ok && statsOK {
		fmt.Fprintf(out, "worker[0]: probe_batches+%d probe_periods+%d computes+%d coalesced+%d hits+%d\n",
			after.ProbeBatches-before.ProbeBatches,
			after.ProbePeriods-before.ProbePeriods,
			after.Computes-before.Computes,
			after.Coalesced-before.Coalesced,
			after.CacheHits-before.CacheHits)
	}

	if n := failures.Load(); n > 0 {
		return fmt.Errorf("%d of %d distributed sweeps failed or diverged", n, total)
	}
	if minRPS > 0 && rps < minRPS {
		return fmt.Errorf("measured %.1f sweeps/s, below the -min-rps floor of %.1f", rps, minRPS)
	}
	return nil
}

// sweepMismatch compares a distributed sweep against the baseline on the
// (period, valid, total) triples — the byte-identity surface (distributed
// points carry no per-buffer Result).
func sweepMismatch(want, got []capacity.SweepPoint) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d points, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if !w.Period.Equal(g.Period) || w.Valid != g.Valid || w.Total != g.Total {
			return fmt.Errorf("point %d: got (%s valid=%v total=%d), want (%s valid=%v total=%d)",
				i, g.Period, g.Valid, g.Total, w.Period, w.Valid, w.Total)
		}
	}
	return nil
}

// splitList parses a comma-separated flag value, dropping whitespace and
// empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// percentile returns the q-quantile of a sorted latency slice.
func percentile(sorted []int64, q float64) int64 {
	i := int(float64(len(sorted)-1) * q)
	return sorted[i]
}

// readStats snapshots /statsz; a false ok means the endpoint is absent or
// unreadable (soak still measures client-side numbers).
func readStats(client *http.Client, base string) (serve.Stats, bool) {
	var st serve.Stats
	resp, err := client.Get(base + "/statsz")
	if err != nil {
		return st, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, false
	}
	return st, true
}
