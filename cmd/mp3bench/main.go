// Command mp3bench reproduces the experimental evaluation of Wiggers et
// al. (DATE 2008), §5: buffer capacities for an MP3 playback application
// with a variable bit-rate stream at 48 kHz, output at 44.1 kHz.
//
// It prints the derived response times, the capacities computed by the
// paper's algorithm (Equation 4) next to the published values, the
// constant-rate lower bound obtained by fixing n = 960 (the paper's
// comparison against traditional analysis), and — unless -skip-verify is
// given — verifies the sizing with the dataflow simulator, as the paper
// does.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"vrdfcap"
	"vrdfcap/internal/cachecli"
	"vrdfcap/internal/capacity"
	"vrdfcap/internal/minimize"
	"vrdfcap/internal/mp3"
	"vrdfcap/internal/parallel"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/quanta"
	"vrdfcap/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mp3bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mp3bench", flag.ContinueOnError)
	firings := fs.Int64("firings", 44100, "DAC firings to verify (default: one second of audio)")
	seed := fs.Int64("seed", 2008, "seed for the VBR workload")
	skipVerify := fs.Bool("skip-verify", false, "skip the simulation-based verification")
	minimizeFlag := fs.Bool("minimize", false, "additionally search the empirically minimal capacities for the VBR workload")
	minimizeFirings := fs.Int64("minimize-firings", 2205, "DAC firings per minimization probe (default: 50 ms of audio)")
	checkpointsN := fs.Int("checkpoints", 8, "checkpoints retained per probe machine for warm-started -minimize probes (0 = cold resets only)")
	parallelN := fs.Int("parallel", 0, "worker goroutines for the verification workloads (0 = GOMAXPROCS, 1 = serial)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the simulation-backed steps (0 = unlimited)")
	maxEvents := fs.Int64("max-events", 0, "cap simulated events per run (0 = engine default)")
	jitterStr := fs.String("jitter", "", "admissible execution-time jitter fraction in [0, 1) injected during verification, e.g. 1/2")
	degradationStr := fs.String("degradation", "", "sweep fault-injection overrun factors from 1 up to this value (> 1, e.g. 2 or 3/2)")
	var cacheFlags cachecli.Flags
	cacheFlags.Register(fs)
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiling, err := startProfiling(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiling()
	var deadline time.Time
	if *timeout > 0 {
		deadline = time.Now().Add(*timeout)
	}
	var jitter vrdfcap.RatNum
	if *jitterStr != "" {
		if jitter, err = vrdfcap.ParseRat(*jitterStr); err != nil {
			return fmt.Errorf("bad -jitter: %w", err)
		}
	}

	g, err := mp3.Graph()
	if err != nil {
		return err
	}
	c := mp3.Constraint()

	fmt.Fprintln(out, "MP3 playback application (DATE 2008, Section 5)")
	fmt.Fprintln(out, "  chain: vBR --2048/n--> vMP3 --1152/480--> vSRC --441/1--> vDAC")
	fmt.Fprintf(out, "  VBR stream at %d Hz, n ∈ %v bytes per frame\n", mp3.StreamRate, mp3.FrameSizes())
	fmt.Fprintf(out, "  constraint: vDAC strictly periodic at %d Hz (τ = %s s)\n\n", mp3.OutputRate, c.Period)

	res, err := vrdfcap.Analyze(g, c, vrdfcap.PolicyEquation4)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "response times derived from the throughput constraint (= φ):")
	for _, ck := range res.Checks {
		fmt.Fprintf(out, "  ρ(%-5s) = %10s s = %8.4f ms   (paper: %s)\n",
			ck.Task, ck.Rho, ck.Rho.Float64()*1000, paperRho(ck.Task))
	}

	baseGraph := capacity.WithConstantMaxRates(g)
	baseRes, err := vrdfcap.Analyze(baseGraph, c, vrdfcap.PolicyBaseline)
	if err != nil {
		return err
	}
	hybridRes, err := vrdfcap.Analyze(g, c, vrdfcap.PolicyHybrid)
	if err != nil {
		return err
	}

	names := mp3.BufferNames()
	paperVRDF := []int64{6015, 3263, 882}
	paperBase := []int64{5888, 3072, 882}
	fmt.Fprintln(out, "\nbuffer capacities (containers):")
	fmt.Fprintln(out, "  buffer        eq(4)  paper   baseline(n=960)  paper   hybrid")
	for i, n := range names {
		fmt.Fprintf(out, "  d%d %-10s %6d %6d %16d %6d %8d\n",
			i+1, n,
			res.BufferByName(n).Capacity, paperVRDF[i],
			baseRes.BufferByName(n).Capacity, paperBase[i],
			hybridRes.BufferByName(n).Capacity)
	}
	fmt.Fprintf(out, "  totals: eq(4)=%d, paper=%d, baseline=%d, hybrid=%d\n",
		res.TotalCapacity(), int64(6015+3263+882), baseRes.TotalCapacity(), hybridRes.TotalCapacity())
	fmt.Fprintln(out, "  note: eq(4) yields 883 for d3 where the paper reports 882; see EXPERIMENTS.md.")

	if cs, err := capacity.Anchored(res); err == nil {
		fmt.Fprintf(out, "\nanchored schedule (derived, not in the paper): DAC offset %s s = %.3f ms, latency bound %.3f ms\n",
			cs.SinkOffset, cs.SinkOffset.Float64()*1000, cs.LatencyBound.Float64()*1000)
	}

	if *skipVerify && !*minimizeFlag && *degradationStr == "" {
		return nil
	}

	sized, _, err := vrdfcap.Size(g, c, vrdfcap.PolicyEquation4)
	if err != nil {
		return err
	}
	store, err := cacheFlags.Store()
	if err != nil {
		return err
	}
	stats := parallel.Stats{Workers: parallel.Workers(*parallelN)}
	timer := parallel.StartTimer()
	// reportStats flushes the verdict cache and prints the shared run
	// statistics footer of every exit path.
	reportStats := func() error {
		written, err := cachecli.Flush(store)
		if err != nil {
			return err
		}
		timer.Stop(&stats)
		fmt.Fprintf(out, "\nrun stats: %s\n", stats)
		cachecli.WriteStats(out, store, written)
		return nil
	}
	// runMinimize searches the smallest capacities that still sustain the
	// 44.1 kHz schedule for the uniform VBR stream — the empirical lower
	// bound the paper's analytic sizing is compared against.
	runMinimize := func() error {
		upper := make(map[string]int64, len(names))
		for _, n := range names {
			upper[n] = res.BufferByName(n).Capacity
		}
		fp := probecache.GraphKey(sized,
			"minimize-throughput",
			"task="+c.Task, "period="+c.Period.String(),
			fmt.Sprintf("firings=%d", *minimizeFirings),
			fmt.Sprintf("workload=uniform-vbr:seed=%d", *seed),
			fmt.Sprintf("max-events=%d", *maxEvents),
		)
		frontier, err := cachecli.Frontier(store, fp, names[:])
		if err != nil {
			return err
		}
		// The Equation-4 analysis prunes probes before any simulation: its
		// capacities are sufficient for every admissible stream (so also for
		// this one) and the liveness thresholds — the CD block, the MP3
		// frame, the converter's output block — are necessary at any horizon.
		sufficient, necessary, err := capacity.SearchBounds(res, g)
		if err != nil {
			return err
		}
		mstats := &minimize.ProbeStats{}
		mopts := minimize.Options{
			Workers: *parallelN, MaxEvents: *maxEvents, Deadline: deadline,
			Cache: frontier, NoCache: cacheFlags.Disable,
			Checkpoints: *checkpointsN,
			Bounds:      &minimize.Bounds{Sufficient: sufficient, Necessary: necessary},
			Stats:       mstats,
		}
		check := minimize.ThroughputCheck(g, c, *minimizeFirings,
			[]sim.Workloads{{names[0]: {Cons: quanta.Uniform(mp3.FrameSizes(), *seed)}}}, mopts)
		mres, err := minimize.Search(names[:], upper, check, mopts)
		if err != nil {
			return err
		}
		stats.Probes += int64(mres.Checks)
		stats.CacheHits += int64(mres.CacheHits + mres.BoundHits)
		stats.Events += mstats.SimEvents.Load()
		fmt.Fprintf(out, "\nempirically minimal capacities for the uniform VBR stream (%d DAC firings per probe; %d probes simulated, %d answered by the feasibility cache, %d decided by analytic bounds):\n",
			*minimizeFirings, mres.Checks, mres.CacheHits, mres.BoundHits)
		for i, n := range names {
			fmt.Fprintf(out, "  d%d %-10s eq(4) %6d  minimal %6d\n", i+1, n, upper[n], mres.Caps[n])
		}
		fmt.Fprintf(out, "  totals: eq(4)=%d, minimal=%d (lower bound for this stream; eq(4) covers every admissible stream)\n",
			res.TotalCapacity(), mres.Total())
		fmt.Fprintf(out, "  probe effort: %d events simulated, %d replayed from checkpoints (%d warm resets, %d cold)\n",
			mstats.SimEvents.Load(), mstats.ResumedEvents.Load(),
			mstats.WarmResets.Load(), mstats.ColdResets.Load())
		return nil
	}
	// runDegradation sweeps overrun factors at the Equation 4 capacities:
	// the robustness margin of the paper's sizing, as a curve from nominal
	// timing to 2x overruns on every 7th firing.
	runDegradation := func() error {
		maxFactor, err := vrdfcap.ParseRat(*degradationStr)
		if err != nil {
			return fmt.Errorf("bad -degradation: %w", err)
		}
		if !vrdfcap.Rat(1, 1).Less(maxFactor) {
			return fmt.Errorf("-degradation factor %s must exceed 1", maxFactor)
		}
		curve, err := vrdfcap.SweepDegradation(vrdfcap.DegradationConfig{
			Graph:      sized,
			Constraint: c,
			Factors:    vrdfcap.OverrunFactors(vrdfcap.Rat(1, 1), maxFactor, 9),
			Jitter:     jitter,
			Seed:       uint64(*seed),
			Firings:    *minimizeFirings,
			Workloads:  vrdfcap.Workloads{names[0]: {Cons: quanta.Uniform(mp3.FrameSizes(), *seed)}},
			Workers:    *parallelN,
			Deadline:   deadline,
		})
		if err != nil {
			return err
		}
		stats.Probes += int64(len(curve.Points))
		fmt.Fprintf(out, "\nfault-injection degradation sweep (%d DAC firings per point, overrun stalls every 7th firing of every task):\n",
			*minimizeFirings)
		return vrdfcap.WriteDegradation(out, curve)
	}
	if *skipVerify {
		if *minimizeFlag {
			if err := runMinimize(); err != nil {
				return err
			}
		}
		if *degradationStr != "" {
			if err := runDegradation(); err != nil {
				return err
			}
		}
		return reportStats()
	}
	fmt.Fprintf(out, "\nverifying by simulation (%d DAC firings per workload, %d workers)...\n",
		*firings, stats.Workers)
	var inj *vrdfcap.FaultInjector
	if jitter.Sign() > 0 {
		if inj, err = vrdfcap.NewFaultInjector(sized, vrdfcap.FaultSpec{Jitter: jitter, Seed: uint64(*seed)}); err != nil {
			return err
		}
		fmt.Fprintf(out, "  (with admissible execution-time jitter up to %s of ρ, seed %d)\n", jitter, *seed)
	}
	streams := []struct {
		name string
		seq  vrdfcap.Sequence
	}{
		{"uniform VBR", quanta.Uniform(mp3.FrameSizes(), *seed)},
		{"all-min (32 kbit/s)", quanta.MinOf(mp3.FrameSizes())},
		{"all-max (320 kbit/s)", quanta.MaxOf(mp3.FrameSizes())},
		{"bitrate walk", quanta.Walk(mp3.FrameSizes(), *seed)},
	}
	// The streams are independent simulations; run them on the pool and
	// report in order, failing on the first bad stream as the serial loop
	// did.
	verifications, err := parallel.Map(context.Background(), *parallelN, len(streams), func(i int) (*vrdfcap.Verification, error) {
		vopts := vrdfcap.VerifyOptions{
			Firings:   *firings,
			Workloads: vrdfcap.Workloads{names[0]: {Cons: streams[i].seq}},
			Validate:  true,
			MaxEvents: *maxEvents,
			Deadline:  deadline,
		}
		if inj != nil {
			inj.Apply(&vopts)
		}
		return vrdfcap.Verify(sized, c, vopts)
	})
	if err != nil {
		return err
	}
	for i, v := range verifications {
		stats.Probes++
		if v.SelfTimed != nil {
			stats.Events += v.SelfTimed.Events
		}
		var periodicEvents int64
		if v.Periodic != nil {
			periodicEvents = v.Periodic.Events
			stats.Events += periodicEvents
		}
		status := "ok"
		if !v.OK {
			status = "FAILED: " + v.Reason
		}
		fmt.Fprintf(out, "  %-22s %s (offset %s s, %d events periodic phase)\n",
			streams[i].name, status, v.Offset, periodicEvents)
		if !v.OK {
			return fmt.Errorf("verification failed for %s", streams[i].name)
		}
	}
	fmt.Fprintln(out, "all workloads sustained the 44.1 kHz schedule — the computed capacities are sufficient.")

	// The motivating contrast: the baseline sizing under a variable
	// stream is not guaranteed; show what the simulator says.
	fmt.Fprintln(out, "\nbaseline sizing (5888, 3072, 882) under the variable stream:")
	baseSized := g.Clone()
	for i, n := range names {
		baseSized.BufferByName(n).Capacity = paperBase[i]
	}
	v, err := sim.VerifyThroughput(baseSized, c, sim.VerifyOptions{
		Firings:   *firings,
		Workloads: vrdfcap.Workloads{names[0]: {Cons: quanta.Uniform(mp3.FrameSizes(), *seed)}},
	})
	if err != nil {
		return err
	}
	if v.OK {
		fmt.Fprintln(out, "  sustained this particular stream (no guarantee exists for all streams)")
	} else {
		fmt.Fprintf(out, "  failed as expected: %s\n", v.Reason)
	}
	stats.Probes++
	if v.SelfTimed != nil {
		stats.Events += v.SelfTimed.Events
	}
	if v.Periodic != nil {
		stats.Events += v.Periodic.Events
	}
	if *minimizeFlag {
		if err := runMinimize(); err != nil {
			return err
		}
	}
	if *degradationStr != "" {
		if err := runDegradation(); err != nil {
			return err
		}
	}
	return reportStats()
}

// startProfiling starts a CPU profile and/or arranges a heap profile,
// returning a stop function to defer. The heap profile is written at stop
// after a GC so it reflects live steady-state allocations.
func startProfiling(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close() // the start error is the one worth reporting
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			// A failed close can silently truncate the profile.
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}

func paperRho(task string) string {
	switch task {
	case mp3.TaskBR:
		return "51.2 ms"
	case mp3.TaskMP3:
		return "24 ms"
	case mp3.TaskSRC:
		return "10 ms"
	case mp3.TaskDAC:
		return "0.0227 ms"
	}
	return "?"
}
