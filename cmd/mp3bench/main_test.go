package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableWithoutVerification(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-skip-verify"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	wants := []string{
		"51.2000 ms", "24.0000 ms", "10.0000 ms", "0.0227 ms",
		"6015", "3263", "883", "5888", "3072", "882",
		"totals: eq(4)=10161, paper=10160, baseline=9842, hybrid=9969",
	}
	for _, w := range wants {
		if !strings.Contains(text, w) {
			t.Errorf("output missing %q:\n%s", w, text)
		}
	}
}

func TestFullVerificationShortHorizon(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation horizon too long for -short")
	}
	var out bytes.Buffer
	if err := run([]string{"-firings", "2205"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "all workloads sustained the 44.1 kHz schedule") {
		t.Errorf("verification summary missing:\n%s", out.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
