package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"vrdfcap"
)

func TestTableWithoutVerification(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-skip-verify"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	wants := []string{
		"51.2000 ms", "24.0000 ms", "10.0000 ms", "0.0227 ms",
		"6015", "3263", "883", "5888", "3072", "882",
		"totals: eq(4)=10161, paper=10160, baseline=9842, hybrid=9969",
	}
	for _, w := range wants {
		if !strings.Contains(text, w) {
			t.Errorf("output missing %q:\n%s", w, text)
		}
	}
}

func TestFullVerificationShortHorizon(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation horizon too long for -short")
	}
	var out bytes.Buffer
	if err := run([]string{"-firings", "2205"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "all workloads sustained the 44.1 kHz schedule") {
		t.Errorf("verification summary missing:\n%s", out.String())
	}
}

func TestMinimizeSkipVerify(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-skip-verify", "-minimize", "-minimize-firings", "441", "-parallel", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	wants := []string{
		"empirically minimal capacities for the uniform VBR stream",
		"answered by the feasibility cache",
		// The empirical lower bound for this stream at 441 firings per
		// probe; deterministic (seed 2008) and worker-independent.
		"minimal=3641",
		"run stats:",
		"cache_hits=",
	}
	for _, w := range wants {
		if !strings.Contains(text, w) {
			t.Errorf("output missing %q:\n%s", w, text)
		}
	}
	// The found capacities must not depend on the worker count.
	var serial bytes.Buffer
	if err := run([]string{"-skip-verify", "-minimize", "-minimize-firings", "441", "-parallel", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(serial.String(), "minimal=3641") {
		t.Errorf("serial minimization found different capacities:\n%s", serial.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

// stripTimings removes the lines whose content legitimately varies between
// runs (worker counts and wall/CPU times) so outputs can be compared.
func stripTimings(s string) string {
	var kept []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "workers)") || strings.HasPrefix(line, "run stats:") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

func TestParallelVerificationMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation horizon too long for -short")
	}
	var serial, par bytes.Buffer
	if err := run([]string{"-firings", "2205", "-parallel", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-firings", "2205", "-parallel", "4"}, &par); err != nil {
		t.Fatal(err)
	}
	if stripTimings(serial.String()) != stripTimings(par.String()) {
		t.Errorf("parallel verification output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), par.String())
	}
	if !strings.Contains(par.String(), "run stats: probes=5") {
		t.Errorf("stats line missing:\n%s", par.String())
	}
}

func TestDegradationSkipVerify(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-skip-verify", "-degradation", "2", "-minimize-firings", "441", "-parallel", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	wants := []string{
		"fault-injection degradation sweep (441 DAC firings per point",
		"overrun factor",
		"slack",
	}
	for _, w := range wants {
		if !strings.Contains(text, w) {
			t.Errorf("output missing %q:\n%s", w, text)
		}
	}
	// The curve is deterministic in (config, seed): a serial run must agree.
	var serial bytes.Buffer
	if err := run([]string{"-skip-verify", "-degradation", "2", "-minimize-firings", "441", "-parallel", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if stripTimings(serial.String()) != stripTimings(text) {
		t.Errorf("degradation sweep differs between worker counts:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), text)
	}
}

func TestJitteredVerificationShortHorizon(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation horizon too long for -short")
	}
	var out bytes.Buffer
	if err := run([]string{"-firings", "2205", "-jitter", "1/2"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "with admissible execution-time jitter up to 1/2") {
		t.Errorf("jitter notice missing:\n%s", text)
	}
	if !strings.Contains(text, "all workloads sustained the 44.1 kHz schedule") {
		t.Errorf("jittered verification did not sustain the schedule:\n%s", text)
	}
}

func TestTimeoutExpired(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-firings", "441", "-timeout", "1ns"}, &out)
	if !errors.Is(err, vrdfcap.ErrBudgetExceeded) {
		t.Errorf("expired -timeout: err = %v, want ErrBudgetExceeded", err)
	}
}

func TestBadFaultFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-skip-verify", "-degradation", "1"}, &out); err == nil {
		t.Error("-degradation factor 1 accepted (must exceed 1)")
	}
	if err := run([]string{"-firings", "441", "-jitter", "bogus"}, &out); err == nil {
		t.Error("malformed -jitter accepted")
	}
}

func TestMinimizeCacheDirColdWarm(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-skip-verify", "-minimize", "-minimize-firings", "441", "-cache-dir", dir}

	var cold bytes.Buffer
	if err := run(args, &cold); err != nil {
		t.Fatal(err)
	}
	var warm bytes.Buffer
	if err := run(args, &warm); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "0 probes simulated") {
		t.Errorf("warm cache-dir run still simulated probes:\n%s", warm.String())
	}
	if !strings.Contains(warm.String(), "1 loaded") {
		t.Errorf("warm run cache stats missing:\n%s", warm.String())
	}
	// The found minima must be identical; compare the per-buffer lines.
	pick := func(s string) (lines []string) {
		for _, l := range strings.Split(s, "\n") {
			if strings.Contains(l, "minimal") && strings.Contains(l, "eq(4)") {
				lines = append(lines, l)
			}
		}
		return lines
	}
	coldMin, warmMin := pick(cold.String()), pick(warm.String())
	if len(coldMin) == 0 || strings.Join(coldMin, "\n") != strings.Join(warmMin, "\n") {
		t.Errorf("warm cache changed the minima:\n--- cold ---\n%s\n--- warm ---\n%s",
			strings.Join(coldMin, "\n"), strings.Join(warmMin, "\n"))
	}
}
