// Command vrdfcap computes buffer capacities for a throughput-constrained
// task-graph chain described in a JSON or text document (format sniffed;
// see internal/graphio for both grammars).
//
// Usage:
//
//	vrdfcap [flags] graph.json
//
// The document must contain a "constraint" entry (see internal/graphio for
// the format). Example:
//
//	vrdfcap -policy equation4 -verify testdata/mp3.json
//
// Flags:
//
//	-policy name   capacity policy: equation4 (default), baseline, hybrid
//	-dot           print the task graph in Graphviz DOT instead of analysing
//	-vrdf-dot      print the VRDF analysis graph in DOT instead of analysing
//	-verify        additionally verify the sizing by simulation
//	-firings n     firings of the constrained task to verify (default 1000)
//	-seed n        seed for the random workload used by -verify
//	-json          print the sized graph as JSON after the report
//	-latency       print the analytic sink offset and latency bound
//	-sweep list    comma-separated periods for a trade-off table
//	-exact         exhaustive deadlock-freedom certificate (small graphs)
//	-minimize      search the empirically minimal capacities by simulation
//	-minimize-firings n  firings per minimization probe (0 = use -firings)
//	-checkpoints n checkpoints retained per probe machine for warm starts
//	               during -minimize (0 disables warm-starting; default 8)
//	-parallel n    worker goroutines for the sweep (0 = GOMAXPROCS)
//	-workers list  comma-separated vrdfserve base URLs to shard the -sweep
//	               across (distributed coordinator; failed or dead workers
//	               degrade to local computation, results are identical)
//	-timeout d     wall-clock budget for simulation-backed steps (0 = none)
//	-max-events n  cap simulated events per run (0 = engine default)
//	-jitter q      admissible execution-time jitter in [0,1) for -verify
//	-degradation q fault-injection sweep up to overrun factor q (> 1)
//	-cache-backend s  verdict-store backend: dir:PATH, mem:, or
//	               http[s]://HOST (a vrdfserve /v1/cache store, wrapped in
//	               retries + circuit breaking with in-memory fallback)
//	-cache-dir d   persist probe verdicts under d and warm-start from them
//	-no-cache      disable cross-probe verdict caching (wins over the others)
//	-stats         print run statistics (probes, events, wall/CPU time)
//	-cpuprofile f  write a CPU profile to f
//	-memprofile f  write a heap profile to f on exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"vrdfcap"
	"vrdfcap/internal/cachecli"
	"vrdfcap/internal/capacity"
	"vrdfcap/internal/dispatch"
	"vrdfcap/internal/minimize"
	"vrdfcap/internal/parallel"
	"vrdfcap/internal/probecache"
	"vrdfcap/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vrdfcap:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vrdfcap", flag.ContinueOnError)
	policyName := fs.String("policy", "equation4", "capacity policy: equation4, baseline or hybrid")
	dot := fs.Bool("dot", false, "print the task graph in Graphviz DOT and exit")
	vrdfDot := fs.Bool("vrdf-dot", false, "print the VRDF analysis graph in DOT and exit")
	verify := fs.Bool("verify", false, "verify the sizing by simulation")
	firings := fs.Int64("firings", 1000, "firings of the constrained task to verify")
	seed := fs.Int64("seed", 1, "seed for the random verification workload")
	asJSON := fs.Bool("json", false, "print the sized graph as JSON")
	latency := fs.Bool("latency", false, "print the anchored schedule: analytic sink offset and end-to-end latency bound")
	sweep := fs.String("sweep", "", "comma-separated periods to sweep for a throughput/buffer trade-off table")
	exactFlag := fs.Bool("exact", false, "certify the sizing deadlock-free by exhaustive adversarial search (small graphs)")
	minimizeFlag := fs.Bool("minimize", false, "search the empirically minimal capacities that still satisfy the constraint (simulation-based)")
	minimizeFirings := fs.Int64("minimize-firings", 0, "firings of the constrained task per minimization probe (0 = use -firings)")
	checkpointsN := fs.Int("checkpoints", 8, "checkpoints retained per probe machine for warm-started -minimize probes (0 = cold resets only)")
	parallelN := fs.Int("parallel", 0, "worker goroutines for the period sweep (0 = GOMAXPROCS, 1 = serial)")
	workersStr := fs.String("workers", "", "comma-separated remote vrdfserve base URLs to shard the -sweep across")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for simulation-backed steps (0 = unlimited)")
	maxEvents := fs.Int64("max-events", 0, "cap simulated events per run (0 = engine default)")
	jitterStr := fs.String("jitter", "", "admissible execution-time jitter fraction in [0, 1) injected during -verify, e.g. 1/2")
	degradationStr := fs.String("degradation", "", "sweep fault-injection overrun factors from 1 up to this value (> 1, e.g. 2 or 3/2)")
	statsFlag := fs.Bool("stats", false, "print run statistics (analyses, simulation events, wall/CPU time)")
	var cacheFlags cachecli.Flags
	cacheFlags.Register(fs)
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one graph file, got %d arguments", fs.NArg())
	}
	stopProfiling, err := startProfiling(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiling()
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	g, c, err := vrdfcap.DecodeGraph(data)
	if err != nil {
		return err
	}
	if *dot {
		return vrdfcap.WriteDOT(out, g)
	}
	if *vrdfDot {
		return vrdfcap.WriteVRDFDOT(out, g)
	}
	if c == nil {
		return fmt.Errorf("document %s has no throughput constraint", fs.Arg(0))
	}
	policy, err := capacity.ParsePolicy(*policyName)
	if err != nil {
		return err
	}
	// One budget covers the whole invocation: every simulation-backed step
	// below shares the same wall-clock deadline.
	var deadline time.Time
	if *timeout > 0 {
		deadline = time.Now().Add(*timeout)
	}
	var jitter vrdfcap.RatNum
	if *jitterStr != "" {
		if jitter, err = vrdfcap.ParseRat(*jitterStr); err != nil {
			return fmt.Errorf("bad -jitter: %w", err)
		}
	}
	store, err := cacheFlags.Store()
	if err != nil {
		return err
	}
	stats := parallel.Stats{Workers: parallel.Workers(*parallelN)}
	timer := parallel.StartTimer()
	sized, res, err := vrdfcap.Size(g, *c, policy)
	if err != nil {
		return err
	}
	stats.Probes++
	if err := vrdfcap.WriteReport(out, res); err != nil {
		return err
	}
	if *latency {
		cs, err := vrdfcap.AnchoredSchedule(res)
		if err != nil {
			fmt.Fprintf(out, "\nanchored schedule unavailable: %v\n", err)
		} else {
			fmt.Fprintf(out, "\nanchored schedule: sink offset %s (%.6g time units), end-to-end latency bound %s (%.6g)\n",
				cs.SinkOffset, cs.SinkOffset.Float64(), cs.LatencyBound, cs.LatencyBound.Float64())
		}
	}
	dispatchStats := &dispatch.Stats{}
	if *sweep != "" {
		periods, err := parsePeriods(*sweep)
		if err != nil {
			return err
		}
		pts, err := vrdfcap.SweepPeriodsOpt(g, c.Task, periods, policy, vrdfcap.SweepOptions{
			Parallel:      *parallelN,
			Workers:       splitWorkers(*workersStr),
			DispatchStats: dispatchStats,
			Deadline:      deadline,
			NoCache:       cacheFlags.Disable,
			Cache:         cachecli.Periods(store, capacity.SweepKey(g, c.Task, policy)),
		})
		if err != nil {
			return err
		}
		stats.Probes += int64(len(pts))
		fmt.Fprintln(out, "\nperiod sweep (throughput/buffer trade-off):")
		for _, pt := range pts {
			if pt.Valid {
				fmt.Fprintf(out, "  τ=%-12s total capacity %d\n", pt.Period, pt.Total)
			} else {
				fmt.Fprintf(out, "  τ=%-12s infeasible\n", pt.Period)
			}
		}
	}
	if *exactFlag {
		ok, w, err := vrdfcap.CertifyDeadlockFree(sized, 0)
		switch {
		case err != nil:
			fmt.Fprintf(out, "\nexact certificate unavailable: %v\n", err)
		case ok:
			fmt.Fprintln(out, "\nexact certificate: deadlock-free for EVERY quanta sequence (exhaustive search)")
		default:
			fmt.Fprintf(out, "\nexact certificate FAILED: adversarial witness %+v\n", w)
		}
	}
	if *verify {
		if !res.Valid {
			fmt.Fprintln(out, "\nskipping verification: the analysis already proved the constraint infeasible")
		} else {
			vopts := vrdfcap.VerifyOptions{
				Firings:   *firings,
				Workloads: vrdfcap.UniformWorkloads(sized, *seed),
				Validate:  true,
				MaxEvents: *maxEvents,
				Deadline:  deadline,
			}
			if jitter.Sign() > 0 {
				inj, err := vrdfcap.NewFaultInjector(sized, vrdfcap.FaultSpec{Jitter: jitter, Seed: uint64(*seed)})
				if err != nil {
					return err
				}
				inj.Apply(&vopts)
				fmt.Fprintf(out, "\ninjecting admissible execution-time jitter up to %s of ρ (seed %d)\n", jitter, *seed)
			}
			v, err := vrdfcap.Verify(sized, *c, vopts)
			if err != nil {
				return err
			}
			stats.Probes++
			if v.SelfTimed != nil {
				stats.Events += v.SelfTimed.Events
			}
			if v.Periodic != nil {
				stats.Events += v.Periodic.Events
			}
			fmt.Fprintln(out)
			if err := vrdfcap.WriteVerification(out, v); err != nil {
				return err
			}
		}
	}
	if *minimizeFlag {
		if !res.Valid {
			fmt.Fprintln(out, "\nskipping minimization: the analysis already proved the constraint infeasible")
		} else {
			var buffers []string
			upper := make(map[string]int64)
			for _, b := range sized.Buffers() {
				buffers = append(buffers, b.DefaultName())
				upper[b.DefaultName()] = b.Capacity
			}
			probeFirings := *minimizeFirings
			if probeFirings <= 0 {
				probeFirings = *firings
			}
			// The fingerprint must pin everything that co-determines a
			// probe's verdict: the sized graph (upper bounds included),
			// the constraint, the horizon and the workload.
			fp := probecache.GraphKey(sized,
				"minimize-throughput",
				"task="+c.Task, "period="+c.Period.String(),
				fmt.Sprintf("firings=%d", probeFirings),
				fmt.Sprintf("workload=uniform:seed=%d", *seed),
				fmt.Sprintf("max-events=%d", *maxEvents),
			)
			frontier, err := cachecli.Frontier(store, fp, buffers)
			if err != nil {
				return err
			}
			// The analytic result prunes probes the simulator need not run:
			// its capacities are sufficient for every admissible workload
			// (so also for this one), and the liveness thresholds are
			// necessary for any horizon.
			sufficient, necessary, err := capacity.SearchBounds(res, g)
			if err != nil {
				return err
			}
			mstats := &minimize.ProbeStats{}
			mopts := minimize.Options{
				Workers: *parallelN, MaxEvents: *maxEvents, Deadline: deadline,
				Cache: frontier, NoCache: cacheFlags.Disable,
				Checkpoints: *checkpointsN,
				Bounds:      &minimize.Bounds{Sufficient: sufficient, Necessary: necessary},
				Stats:       mstats,
			}
			check := minimize.ThroughputCheck(g, *c, probeFirings,
				[]sim.Workloads{vrdfcap.UniformWorkloads(sized, *seed)}, mopts)
			mres, err := minimize.Search(buffers, upper, check, mopts)
			if err != nil {
				return err
			}
			stats.Probes += int64(mres.Checks)
			stats.CacheHits += int64(mres.CacheHits + mres.BoundHits)
			stats.Events += mstats.SimEvents.Load()
			fmt.Fprintf(out, "\nempirically minimal capacities for this workload (%d firings per probe; %d probes simulated, %d answered by the feasibility cache, %d decided by analytic bounds):\n",
				probeFirings, mres.Checks, mres.CacheHits, mres.BoundHits)
			for _, b := range buffers {
				fmt.Fprintf(out, "  %-12s analytic %6d  minimal %6d\n", b, upper[b], mres.Caps[b])
			}
			fmt.Fprintf(out, "  totals: analytic=%d, minimal=%d (a lower bound for this workload; the analytic sizing covers every admissible workload)\n",
				res.TotalCapacity(), mres.Total())
			fmt.Fprintf(out, "  probe effort: %d events simulated, %d replayed from checkpoints (%d warm resets, %d cold)\n",
				mstats.SimEvents.Load(), mstats.ResumedEvents.Load(),
				mstats.WarmResets.Load(), mstats.ColdResets.Load())
		}
	}
	if *degradationStr != "" {
		maxFactor, err := vrdfcap.ParseRat(*degradationStr)
		if err != nil {
			return fmt.Errorf("bad -degradation: %w", err)
		}
		if !vrdfcap.Rat(1, 1).Less(maxFactor) {
			return fmt.Errorf("-degradation factor %s must exceed 1", maxFactor)
		}
		if !res.Valid {
			fmt.Fprintln(out, "\nskipping degradation sweep: the analysis already proved the constraint infeasible")
		} else {
			curve, err := vrdfcap.SweepDegradation(vrdfcap.DegradationConfig{
				Graph:      sized,
				Constraint: *c,
				Factors:    vrdfcap.OverrunFactors(vrdfcap.Rat(1, 1), maxFactor, 9),
				Jitter:     jitter,
				Seed:       uint64(*seed),
				Firings:    *firings,
				Workers:    *parallelN,
				Deadline:   deadline,
			})
			if err != nil {
				return err
			}
			stats.Probes += int64(len(curve.Points))
			fmt.Fprintln(out, "\nfault-injection degradation sweep (overrun stalls every 7th firing of every task):")
			if err := vrdfcap.WriteDegradation(out, curve); err != nil {
				return err
			}
		}
	}
	if *asJSON {
		data, err := vrdfcap.EncodeJSON(sized, c)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\n%s\n", data)
	}
	written, err := cachecli.Flush(store)
	if err != nil {
		return err
	}
	if *statsFlag {
		timer.Stop(&stats)
		fmt.Fprintf(out, "\nrun stats: %s\n", &stats)
		cachecli.WriteStats(out, store, written)
		if sn := dispatchStats.Snapshot(); sn.Sweeps > 0 {
			fmt.Fprintf(out, "%s\n", sn)
		}
	}
	return nil
}

// splitWorkers parses the -workers list: comma-separated base URLs,
// surrounding whitespace and empty elements dropped.
func splitWorkers(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// startProfiling starts a CPU profile and/or arranges a heap profile,
// returning a stop function to defer. The heap profile is written at stop
// after a GC so it reflects live steady-state allocations.
func startProfiling(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close() // the start error is the one worth reporting
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			// A failed close can silently truncate the profile.
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}

// parsePeriods parses a comma-separated list of exact rationals.
func parsePeriods(s string) ([]vrdfcap.RatNum, error) {
	var out []vrdfcap.RatNum
	for _, part := range strings.Split(s, ",") {
		r, err := vrdfcap.ParseRat(part)
		if err != nil {
			return nil, fmt.Errorf("bad period %q: %w", part, err)
		}
		if r.Sign() <= 0 {
			return nil, fmt.Errorf("period %q must be positive", part)
		}
		out = append(out, r)
	}
	return out, nil
}
