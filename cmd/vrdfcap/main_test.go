package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vrdfcap"
	"vrdfcap/internal/mp3"
)

func writeMP3JSON(t *testing.T, withConstraint bool) string {
	t.Helper()
	g, err := mp3.Graph()
	if err != nil {
		t.Fatal(err)
	}
	var c *vrdfcap.Constraint
	if withConstraint {
		cc := mp3.Constraint()
		c = &cc
	}
	data, err := vrdfcap.EncodeJSON(g, c)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mp3.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAnalysis(t *testing.T) {
	path := writeMP3JSON(t, true)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"6015", "3263", "883", "vDAC", "total capacity: 10161"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunWithVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("verification horizon too long for -short")
	}
	path := writeMP3JSON(t, true)
	var out bytes.Buffer
	if err := run([]string{"-verify", "-firings", "500", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "verified") {
		t.Errorf("verification section missing:\n%s", out.String())
	}
}

func TestRunHybridPolicy(t *testing.T) {
	path := writeMP3JSON(t, true)
	var out bytes.Buffer
	if err := run([]string{"-policy", "hybrid", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "total capacity: 9969") {
		t.Errorf("hybrid totals wrong:\n%s", out.String())
	}
}

func TestRunDOT(t *testing.T) {
	path := writeMP3JSON(t, true)
	var out bytes.Buffer
	if err := run([]string{"-dot", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "digraph taskgraph") {
		t.Errorf("DOT output missing:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-vrdf-dot", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "digraph vrdf") {
		t.Errorf("VRDF DOT output missing:\n%s", out.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeMP3JSON(t, true)
	var out bytes.Buffer
	if err := run([]string{"-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"capacity": 6015`) {
		t.Errorf("sized JSON missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"a", "b"}, &out); err == nil {
		t.Error("two files accepted")
	}
	if err := run([]string{"/nonexistent/x.json"}, &out); err == nil {
		t.Error("unreadable file accepted")
	}
	noCon := writeMP3JSON(t, false)
	if err := run([]string{noCon}, &out); err == nil {
		t.Error("document without constraint accepted")
	}
	withCon := writeMP3JSON(t, true)
	if err := run([]string{"-policy", "nope", withCon}, &out); err == nil {
		t.Error("bad policy accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &out); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestRunLatencyAndSweep(t *testing.T) {
	path := writeMP3JSON(t, true)
	var out bytes.Buffer
	if err := run([]string{"-latency", "-sweep", "1/88200,1/44100,1/22050", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "anchored schedule: sink offset 28597/240000") {
		t.Errorf("latency section missing or wrong:\n%s", text)
	}
	if !strings.Contains(text, "period sweep") || !strings.Contains(text, "infeasible") {
		t.Errorf("sweep section missing:\n%s", text)
	}
	if err := run([]string{"-sweep", "x", path}, &out); err == nil {
		t.Error("bad sweep list accepted")
	}
	if err := run([]string{"-sweep", "-3", path}, &out); err == nil {
		t.Error("negative sweep period accepted")
	}
}

func TestRunTextDocument(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"../../testdata/mp3.txt"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"6015", "3263", "total memory: 22599 bytes"} {
		if !strings.Contains(text, want) {
			t.Errorf("text-format analysis missing %q:\n%s", want, text)
		}
	}
}

func TestRunExactCertificate(t *testing.T) {
	// A small graph gets the exhaustive certificate; the MP3 graph trips
	// the state guard with a clear message.
	small := filepath.Join(t.TempDir(), "small.txt")
	doc := "task a wcrt 1\ntask b wcrt 1\nbuffer a -> b prod 3 cons {2,3}\nconstraint b period 3\n"
	if err := os.WriteFile(small, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-exact", small}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "deadlock-free for EVERY quanta sequence") {
		t.Errorf("certificate missing:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-exact", writeMP3JSON(t, true)}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "exact certificate unavailable") {
		t.Errorf("guard message missing:\n%s", out.String())
	}
}

func TestRunMinimize(t *testing.T) {
	path := writeMP3JSON(t, true)
	var out bytes.Buffer
	if err := run([]string{"-minimize", "-firings", "441", "-parallel", "2", "-stats", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	wants := []string{
		"empirically minimal capacities for this workload",
		"answered by the feasibility cache",
		"decided by analytic bounds",
		"probe effort:",
		"replayed from checkpoints",
		"totals: analytic=10161",
		"cache_hits=",
	}
	for _, w := range wants {
		if !strings.Contains(text, w) {
			t.Errorf("output missing %q:\n%s", w, text)
		}
	}
}

// TestRunMinimizeColdCheckpoints pins the -checkpoints 0 escape hatch: warm
// starts off, the search still runs and finds the same kind of report.
func TestRunMinimizeColdCheckpoints(t *testing.T) {
	path := writeMP3JSON(t, true)
	var out bytes.Buffer
	if err := run([]string{"-minimize", "-firings", "441", "-checkpoints", "0", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "0 replayed from checkpoints (0 warm resets") {
		t.Errorf("-checkpoints 0 still warm-started:\n%s", text)
	}
}

func TestRunProfiles(t *testing.T) {
	path := writeMP3JSON(t, true)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var out bytes.Buffer
	// CPU profiling is process-global, so no other test may profile
	// concurrently; package tests run sequentially here.
	if err := run([]string{"-cpuprofile", cpu, "-memprofile", mem, path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	if err := run([]string{"-cpuprofile", filepath.Join(dir, "no", "such", "dir", "x"), path}, &out); err == nil {
		t.Error("unwritable profile path accepted")
	}
}

func TestRunParallelSweepAndStats(t *testing.T) {
	path := writeMP3JSON(t, true)
	sweep := "1/44100,1/40000,1/30000"
	var serial, par bytes.Buffer
	if err := run([]string{"-sweep", sweep, "-parallel", "1", path}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sweep", sweep, "-parallel", "4", path}, &par); err != nil {
		t.Fatal(err)
	}
	if serial.String() != par.String() {
		t.Errorf("parallel sweep output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), par.String())
	}
	var out bytes.Buffer
	if err := run([]string{"-sweep", sweep, "-parallel", "4", "-stats", path}, &out); err != nil {
		t.Fatal(err)
	}
	// 1 analysis + 3 sweep points; no verification.
	if !strings.Contains(out.String(), "run stats: probes=4 sim_events=0 workers=4") {
		t.Errorf("stats line missing or wrong:\n%s", out.String())
	}
}

func TestRunVerifyWithJitter(t *testing.T) {
	if testing.Short() {
		t.Skip("verification horizon too long for -short")
	}
	path := writeMP3JSON(t, true)
	var out bytes.Buffer
	if err := run([]string{"-verify", "-firings", "441", "-jitter", "1/2", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "injecting admissible execution-time jitter up to 1/2") {
		t.Errorf("jitter notice missing:\n%s", text)
	}
	if !strings.Contains(text, "verified: strictly periodic schedule sustained") {
		t.Errorf("jittered verification did not pass at eq(4) capacities:\n%s", text)
	}
}

func TestRunMinimizeFirings(t *testing.T) {
	path := writeMP3JSON(t, true)
	var out bytes.Buffer
	if err := run([]string{"-minimize", "-minimize-firings", "441", "-parallel", "2", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "441 firings per probe") {
		t.Errorf("-minimize-firings not honoured:\n%s", text)
	}
	if !strings.Contains(text, "minimal=") {
		t.Errorf("minimization totals missing:\n%s", text)
	}
}

func TestRunDegradationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep horizon too long for -short")
	}
	path := writeMP3JSON(t, true)
	var out bytes.Buffer
	if err := run([]string{"-degradation", "2", "-firings", "441", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"fault-injection degradation sweep", "overrun factor", "slack"} {
		if !strings.Contains(text, want) {
			t.Errorf("degradation output missing %q:\n%s", want, text)
		}
	}
}

func TestRunTimeoutExpired(t *testing.T) {
	path := writeMP3JSON(t, true)
	var out bytes.Buffer
	err := run([]string{"-verify", "-timeout", "1ns", path}, &out)
	if !errors.Is(err, vrdfcap.ErrBudgetExceeded) {
		t.Errorf("expired -timeout: err = %v, want ErrBudgetExceeded", err)
	}
}

func TestRunBadFaultFlags(t *testing.T) {
	path := writeMP3JSON(t, true)
	var out bytes.Buffer
	if err := run([]string{"-jitter", "nope", path}, &out); err == nil {
		t.Error("malformed -jitter accepted")
	}
	if err := run([]string{"-degradation", "1", path}, &out); err == nil {
		t.Error("-degradation factor 1 accepted (must exceed 1)")
	}
	if err := run([]string{"-verify", "-jitter", "3/2", path}, &out); err == nil {
		t.Error("inadmissible jitter >= 1 accepted")
	}
}

// minimizeSection extracts the minimization block (capacities + totals) so
// cold and warm runs can be compared while timings and stats vary.
func minimizeSection(t *testing.T, text string) string {
	t.Helper()
	i := strings.Index(text, "empirically minimal capacities")
	j := strings.Index(text, "totals: analytic=")
	if i < 0 || j < 0 {
		t.Fatalf("minimize section missing:\n%s", text)
	}
	end := strings.IndexByte(text[j:], '\n')
	if end < 0 {
		end = len(text) - j
	}
	// Drop the first line (it reports probe counts, which differ between
	// cold and warm runs by design).
	block := text[i : j+end]
	if nl := strings.IndexByte(block, '\n'); nl >= 0 {
		block = block[nl+1:]
	}
	return block
}

func TestRunMinimizeCacheDirColdWarm(t *testing.T) {
	path := writeMP3JSON(t, true)
	dir := t.TempDir()
	args := []string{"-minimize", "-minimize-firings", "441", "-cache-dir", dir, "-stats", path}

	var cold bytes.Buffer
	if err := run(args, &cold); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no cache file written to %s (%v)", dir, err)
	}
	if !strings.Contains(cold.String(), "1 written") {
		t.Errorf("cold run stats missing the flush count:\n%s", cold.String())
	}

	var warm bytes.Buffer
	if err := run(args, &warm); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "0 probes simulated") {
		t.Errorf("warm cache-dir run still simulated probes:\n%s", warm.String())
	}
	if !strings.Contains(warm.String(), "1 loaded") {
		t.Errorf("warm run stats missing the loaded count:\n%s", warm.String())
	}
	if got, want := minimizeSection(t, warm.String()), minimizeSection(t, cold.String()); got != want {
		t.Errorf("warm cache changed the found capacities:\n--- cold ---\n%s\n--- warm ---\n%s", want, got)
	}

	// Corrupt every cache file: the next run must fall back to cold
	// simulation — same answers, no trust in the broken files.
	for _, f := range files {
		if err := os.WriteFile(f, []byte("{definitely not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var healed bytes.Buffer
	if err := run(args, &healed); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(healed.String(), "0 probes simulated") {
		t.Errorf("corrupt cache was trusted:\n%s", healed.String())
	}
	if !strings.Contains(healed.String(), "1 skipped") {
		t.Errorf("corrupt file not reported as skipped:\n%s", healed.String())
	}
	if got, want := minimizeSection(t, healed.String()), minimizeSection(t, cold.String()); got != want {
		t.Errorf("post-corruption run changed the found capacities:\n--- cold ---\n%s\n--- healed ---\n%s", want, got)
	}
}

func TestRunNoCacheDisablesCaching(t *testing.T) {
	path := writeMP3JSON(t, true)
	// Warm the process-wide shared store first, then prove -no-cache
	// ignores it (and -cache-dir) entirely.
	var warmup bytes.Buffer
	if err := run([]string{"-minimize", "-minimize-firings", "441", path}, &warmup); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-minimize", "-minimize-firings", "441", "-no-cache",
		"-cache-dir", t.TempDir(), "-stats", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if strings.Contains(text, "0 probes simulated") {
		t.Errorf("-no-cache run answered probes from a cache:\n%s", text)
	}
	if !strings.Contains(text, ", 0 answered by the feasibility cache") {
		t.Errorf("-no-cache run reported cache hits:\n%s", text)
	}
	if !strings.Contains(text, "cache: disabled") {
		t.Errorf("stats line does not report the disabled cache:\n%s", text)
	}
	if got, want := minimizeSection(t, text), minimizeSection(t, warmup.String()); got != want {
		t.Errorf("-no-cache changed the found capacities:\n--- cached ---\n%s\n--- no-cache ---\n%s", want, got)
	}
}

func TestRunSweepCacheDirPersists(t *testing.T) {
	path := writeMP3JSON(t, true)
	dir := t.TempDir()
	sweep := "1/44100,1/40000,1/30000"
	var cold, warm bytes.Buffer
	if err := run([]string{"-sweep", sweep, "-cache-dir", dir, path}, &cold); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("sweep wrote %d cache files (%v), want 1", len(files), err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"periods"`) {
		t.Errorf("cache file has no period verdicts:\n%s", data)
	}
	if err := run([]string{"-sweep", sweep, "-cache-dir", dir, path}, &warm); err != nil {
		t.Fatal(err)
	}
	if cold.String() != warm.String() {
		t.Errorf("warm sweep output differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s",
			cold.String(), warm.String())
	}
}
