// Package vrdfcap computes buffer capacities for throughput-constrained
// task graphs with data-dependent inter-task communication, implementing
//
//	M. H. Wiggers, M. J. G. Bekooij, G. J. M. Smit.
//	"Computation of Buffer Capacities for Throughput Constrained and
//	Data Dependent Inter-Task Communication." DATE 2008.
//
// Streaming applications are modelled as chains of tasks communicating over
// circular FIFO buffers. A task starts an execution only when its input
// buffer holds enough full containers and its output buffer enough empty
// containers for the whole execution — and the amount of data transferred
// may change every execution (e.g. a variable-length decoder). Given a
// throughput constraint on the chain's sink or source, this package
// computes buffer capacities guaranteed to satisfy it, using the
// Variable-Rate Dataflow (VRDF) analysis of the paper.
//
// # Quick start
//
//	g, _ := vrdfcap.Chain(
//		[]vrdfcap.Stage{
//			{Name: "producer", WCRT: vrdfcap.Rat(1, 1)},
//			{Name: "consumer", WCRT: vrdfcap.Rat(1, 1)},
//		},
//		[]vrdfcap.Link{{
//			Prod: vrdfcap.Quanta(3),    // always produces 3 containers
//			Cons: vrdfcap.Quanta(2, 3), // consumes 2 or 3, data dependent
//		}},
//	)
//	res, _ := vrdfcap.Analyze(g, vrdfcap.Constraint{
//		Task: "consumer", Period: vrdfcap.Rat(3, 1),
//	}, vrdfcap.PolicyEquation4)
//	fmt.Println(res.Buffers[0].Capacity) // 7
//
// Verify the sizing by simulation with Verify, explore empirical minima
// with the internal/minimize package, and reproduce the paper's MP3
// experiment with the benchmarks in this package or cmd/mp3bench.
package vrdfcap

import (
	"io"

	"vrdfcap/internal/budget"
	"vrdfcap/internal/capacity"
	"vrdfcap/internal/graphio"
	"vrdfcap/internal/quanta"
	"vrdfcap/internal/ratio"
	"vrdfcap/internal/sim"
	"vrdfcap/internal/taskgraph"
	"vrdfcap/internal/vrdf"
)

// Core model types, re-exported from the internal packages.
type (
	// Graph is a task graph T = (W, B, ξ, λ, κ, ζ): tasks communicating
	// over circular buffers.
	Graph = taskgraph.Graph
	// Task is a node of the task graph with a worst-case response time.
	Task = taskgraph.Task
	// Buffer is a circular FIFO buffer between two tasks.
	Buffer = taskgraph.Buffer
	// QuantaSet is a finite set of possible transfer quanta.
	QuantaSet = taskgraph.QuantaSet
	// Stage and Link feed the Chain builder.
	Stage = taskgraph.Stage
	Link  = taskgraph.Link
	// Constraint is a strict-periodicity throughput requirement on the
	// chain's sink or source.
	Constraint = taskgraph.Constraint
	// RatNum is an exact rational number; all times and rates are exact.
	RatNum = ratio.Rat

	// Policy selects the capacity formula (Equation 4, the constant-rate
	// baseline, or the hybrid refinement).
	Policy = capacity.Policy
	// Result is a capacity-analysis outcome: per-buffer capacities,
	// minimal start distances φ, and schedule-validity checks.
	Result = capacity.Result
	// BufferResult is the per-buffer slice of a Result.
	BufferResult = capacity.BufferResult

	// Sequence yields per-firing transfer quanta for simulation.
	Sequence = quanta.Sequence
	// Workload and Workloads bind sequences to buffers.
	Workload  = sim.Workload
	Workloads = sim.Workloads
	// Verification is the outcome of a simulation-based throughput
	// check.
	Verification = sim.Verification
	// VerifyOptions tunes Verify.
	VerifyOptions = sim.VerifyOptions
	// UnderrunInfo is the structured diagnostic of a missed periodic
	// start: actor, firing, tick, and the starved edge (empty when the
	// previous firing was still running).
	UnderrunInfo = sim.UnderrunInfo
	// DeadlockInfo is the structured diagnostic of a deadlocked
	// simulation: the tick and every blocked actor.
	DeadlockInfo = sim.DeadlockInfo
	// BlockedActor is one blocked actor of a DeadlockInfo.
	BlockedActor = sim.BlockedActor
)

// Typed cancellation and budget errors, re-exported from internal/budget.
// Any search, sweep or verification given a Context or Deadline reports
// running out of either with an error satisfying errors.Is against these.
var (
	// ErrCanceled reports a cooperative cancellation via a Context; such
	// errors also satisfy errors.Is(err, context.Canceled).
	ErrCanceled = budget.ErrCanceled
	// ErrBudgetExceeded reports an exhausted wall-clock Deadline.
	ErrBudgetExceeded = budget.ErrBudgetExceeded
)

// Capacity policies.
const (
	// PolicyEquation4 is the paper's algorithm (Equation 4), valid for
	// data-dependent quanta.
	PolicyEquation4 = capacity.PolicyEquation4
	// PolicyBaseline is the constant-rate comparator of the paper's
	// related work; it rejects graphs with variable quanta.
	PolicyBaseline = capacity.PolicyBaseline
	// PolicyHybrid refines Equation 4 with the constant-rate bound on
	// buffers whose quanta are constant.
	PolicyHybrid = capacity.PolicyHybrid
)

// NewGraph returns an empty task graph; add tasks and buffers with its
// AddTask and AddBuffer methods, or use Chain / Pair.
func NewGraph() *Graph { return taskgraph.New() }

// Chain builds a chain task graph from stages and the links between them.
func Chain(stages []Stage, links []Link) (*Graph, error) {
	return taskgraph.BuildChain(stages, links)
}

// Pair builds a two-task producer–consumer graph (the paper's Figure 1).
func Pair(prodName string, prodWCRT RatNum, consName string, consWCRT RatNum, prod, cons QuantaSet) (*Graph, error) {
	return taskgraph.Pair(prodName, prodWCRT, consName, consWCRT, prod, cons)
}

// Rat returns the exact rational num/den; it panics on a zero denominator.
func Rat(num, den int64) RatNum { return ratio.MustNew(num, den) }

// ParseRat parses "3", "1/44100" or "51.2" into an exact rational.
func ParseRat(s string) (RatNum, error) { return ratio.Parse(s) }

// Quanta returns the quanta set holding the given values; it panics on an
// invalid set (empty, negative members, or {0}).
func Quanta(values ...int64) QuantaSet { return taskgraph.MustQuanta(values...) }

// NewQuanta is the error-returning form of Quanta.
func NewQuanta(values ...int64) (QuantaSet, error) { return taskgraph.NewQuantaSet(values...) }

// QuantaRange returns the set {lo, …, hi}.
func QuantaRange(lo, hi int64) (QuantaSet, error) { return taskgraph.Range(lo, hi) }

// Analyze computes sufficient buffer capacities for the chain g under the
// throughput constraint c with the given policy. It never mutates g.
func Analyze(g *Graph, c Constraint, p Policy) (*Result, error) {
	return capacity.Compute(g, c, p)
}

// Size runs Analyze and returns a sized copy of the graph alongside the
// analysis result.
func Size(g *Graph, c Constraint, p Policy) (*Graph, *Result, error) {
	res, err := capacity.Compute(g, c, p)
	if err != nil {
		return nil, nil, err
	}
	sized, err := capacity.Sized(g, res)
	if err != nil {
		return nil, nil, err
	}
	return sized, res, nil
}

// Verify checks by discrete-event simulation that a sized graph sustains
// the throughput constraint under the given workload: a self-timed phase
// followed by a strictly periodic phase of the constrained task.
func Verify(sized *Graph, c Constraint, opts VerifyOptions) (*Verification, error) {
	return sim.VerifyThroughput(sized, c, opts)
}

// Workload generators for Verify.

// ConstantSeq always yields v.
func ConstantSeq(v int64) Sequence { return quanta.Constant(v) }

// CycleSeq cycles through the given values.
func CycleSeq(values ...int64) Sequence { return quanta.Cycle(values...) }

// UniformSeq draws uniformly from the set, deterministically from seed.
func UniformSeq(set QuantaSet, seed int64) Sequence { return quanta.Uniform(set, seed) }

// UniformWorkloads builds a workload drawing every variable quanta set
// uniformly at random (deterministic in seed).
func UniformWorkloads(g *Graph, seed int64) Workloads { return sim.UniformWorkloads(g, seed) }

// EncodeJSON serialises a graph and optional constraint to JSON.
func EncodeJSON(g *Graph, c *Constraint) ([]byte, error) { return graphio.Encode(g, c) }

// DecodeJSON parses a JSON document into a graph and optional constraint.
func DecodeJSON(data []byte) (*Graph, *Constraint, error) { return graphio.Decode(data) }

// DecodeGraph parses a graph document in either supported format, sniffing
// JSON (leading '{') versus the line-oriented text format.
func DecodeGraph(data []byte) (*Graph, *Constraint, error) { return graphio.DecodeAny(data) }

// EncodeText renders a graph and optional constraint in the line-oriented
// text format (see internal/graphio for the grammar).
func EncodeText(g *Graph, c *Constraint) []byte { return graphio.EncodeText(g, c) }

// WriteDOT renders the task graph in Graphviz DOT form.
func WriteDOT(w io.Writer, g *Graph) error { return graphio.WriteDOT(w, g) }

// WriteVRDFDOT renders the VRDF analysis graph of g in Graphviz DOT form.
func WriteVRDFDOT(w io.Writer, g *Graph) error {
	vg, _, err := vrdf.FromTaskGraph(g)
	if err != nil {
		return err
	}
	return graphio.WriteVRDFDOT(w, vg)
}
