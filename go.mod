module vrdfcap

go 1.22
